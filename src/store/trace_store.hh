/**
 * @file
 * TraceStore: a persistent, content-addressed on-disk cache of
 * generated traces, baseline simulation results, and per-engine
 * simulation results, so the work the parallel ExperimentDriver
 * amortizes *within* a process also survives *across* processes,
 * benches, tools, and CI runs.
 *
 * Layout under the store root:
 *
 *   traces/<key-hash>.trc    v2-encoded trace (trace/trace_codec.hh)
 *   traces/<key-hash>.meta   text metadata: the key fields, the
 *                            record count, and the content digest
 *   baselines/<trace-digest>-<config-digest>.bl
 *                            binary baseline metrics (CRC-checked)
 *   results/<trace-digest>-<spec-digest>-<config-digest>.res
 *                            binary engine-cell result (CRC-checked)
 *   results/<...same...>.meta
 *                            text sidecar: workload/engine names,
 *                            headline metrics, save timestamp
 *   checkpoints/<spec-digest>-<config-digest>-<record-index>-<state-digest>.ckpt
 *                            mid-trace simulator snapshot
 *                            (sim/checkpoint.hh blob, CRC-framed)
 *   checkpoints/<...same...>.meta
 *                            text sidecar: workload/engine names,
 *                            record index, save timestamp
 *
 * Trace entries are keyed by (workload, records, seed, encoding
 * version) — everything that determines a generated trace's content.
 * Baseline entries are keyed by the *content digest* of the trace
 * plus an opaque configuration digest supplied by the caller, so an
 * imported external trace gets baseline caching exactly like a
 * generated one. Engine-result entries add a digest of the engine
 * specification (registered name + every EngineOptions override +
 * probe identity; see describeEngineSpec()), so one warm cell of a
 * sweep is exactly one stored result.
 *
 * Checkpoint entries are keyed by the *prefix* of the trace they
 * were taken in, not the whole trace: the state digest combines the
 * content digest of records [0, index) with the warmup boundary (or
 * "pending" when the boundary lies beyond the index). A longer
 * re-generation of the same workload therefore still matches the
 * shorter run's checkpoints over their common prefix — which is what
 * makes extending a sweep's --records simulate only the new suffix
 * (sim/driver.hh segmented execution).
 *
 * Writes are atomic (temp file + rename), so concurrent processes
 * sharing a store directory at worst duplicate work, never corrupt
 * entries. Reads touch the entry mtime; evictWithin() removes
 * oldest-first across all three entry kinds until the store fits a
 * size budget.
 */

#ifndef STEMS_STORE_TRACE_STORE_HH
#define STEMS_STORE_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/prefetch_sim.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace stems {

/** Identity of a generated trace: everything that determines its
 *  content. For external (imported) traces use the import name as
 *  `workload` with seed 0. */
struct TraceKey
{
    std::string workload;
    std::uint64_t records = 0;
    std::uint64_t seed = 0;
};

/** Metadata of a stored trace entry. */
struct TraceEntryInfo
{
    TraceKey key;
    std::uint64_t digest = 0;  ///< content digest of the records
    std::uint64_t records = 0; ///< actual record count
    std::uint64_t bytes = 0;   ///< encoded size on disk
};

/** Cached baseline metrics for one (trace digest, config digest). */
struct StoredBaseline
{
    std::uint64_t misses = 0; ///< no-prefetch off-chip read misses
    double cycles = 0.0;      ///< no-prefetch cycles
    double strideCycles = 0.0;
    double strideIpc = 0.0;
    bool haveStride = false;
    bool haveTiming = false; ///< cycle fields are valid
};

/**
 * One engine cell's raw simulation output: everything the driver
 * needs to merge the cell without running it. The normalized metrics
 * (coverage, speedup, ...) are recomputed at merge time from these
 * stats plus the baseline, so a warm cell is bitwise identical to a
 * cold one.
 */
struct StoredEngineResult
{
    SimStats stats;
    /// Probe-collected extras (EngineResult::extra).
    std::map<std::string, double> extra;
};

/** Human-readable identity written to a result's .meta sidecar. */
struct StoredResultMeta
{
    std::string workload;
    std::string engine; ///< result label
    std::uint64_t records = 0;
    std::uint64_t seed = 0;
    double coverage = 0.0;
    double accuracy = 0.0;
    double speedup = 0.0;
    bool timing = false;
};

/** A result entry as enumerated from the store (`stems_report
 *  history`, `stems_trace cache ls`). */
struct StoredResultInfo
{
    StoredResultMeta meta;
    std::uint64_t traceDigest = 0;
    std::uint64_t specDigest = 0;
    std::uint64_t configDigest = 0;
    std::int64_t savedAtUnix = 0; ///< put-time wall clock
    std::uint64_t bytes = 0;      ///< .res payload size
};

/** Human-readable identity written to a checkpoint's .meta sidecar. */
struct StoredCheckpointMeta
{
    std::string workload;
    std::string engine; ///< cell label ("baseline", "stride", ...)
    std::uint64_t index = 0; ///< records stepped before the save
    std::uint64_t warmup = 0; ///< warmup boundary of the saving run
};

/** One stored checkpoint's (index, state) key under a (spec, config)
 *  pair — what listCheckpoints() parses from entry filenames. */
struct StoredCheckpointKey
{
    std::uint64_t index = 0;       ///< records stepped before save
    std::uint64_t stateDigest = 0; ///< prefix+warmup digest at save
};

/** One row of a store listing (`stems_trace cache ls`). */
struct StoreEntry
{
    enum class Kind
    {
        kTrace,
        kBaseline,
        kResult,
        kCheckpoint,
    };
    Kind kind = Kind::kTrace;
    std::string file;        ///< path relative to the store root
    std::string description; ///< human-readable key summary
    std::uint64_t bytes = 0;
    std::int64_t ageSeconds = 0; ///< since last touch
};

/** The persistent trace & baseline cache. Thread-safe. */
class TraceStore
{
  public:
    struct Options
    {
        /// Eviction threshold applied after every put; 0 disables
        /// automatic eviction.
        std::uint64_t sizeBudgetBytes = std::uint64_t{4} << 30;
    };

    /**
     * Open (and create, if needed) a store rooted at `dir`.
     * Construction never throws on I/O problems; a store whose
     * directory cannot be created degrades to a pass-through
     * (every lookup misses, every put fails).
     */
    explicit TraceStore(std::string dir);
    TraceStore(std::string dir, Options options);

    const std::string &dir() const { return dir_; }

    /** True when the root directory exists and is usable. */
    bool usable() const { return usable_; }

    // ---- traces ----

    /**
     * Look up a trace entry's metadata without decoding its records
     * (reads only the small .meta file).
     */
    std::optional<TraceEntryInfo> findTrace(const TraceKey &key);

    /**
     * Load a stored trace into memory. Decodes through the mmap
     * replay source. @return false on miss or a corrupt entry (a
     * corrupt entry is deleted so it can be regenerated).
     */
    bool loadTrace(const TraceKey &key, Trace &out);

    /**
     * Open a stored trace for zero-copy streaming replay without
     * materializing the record vector. @return null on miss/corrupt.
     */
    std::unique_ptr<TraceSource> openTrace(const TraceKey &key);

    /**
     * Persist a trace under a key. Atomic; overwrites any existing
     * entry for the key. @return the entry metadata (with the
     * content digest) on success.
     */
    std::optional<TraceEntryInfo> putTrace(const TraceKey &key,
                                           const Trace &trace);

    // ---- baselines ----

    std::optional<StoredBaseline>
    loadBaseline(std::uint64_t trace_digest,
                 std::uint64_t config_digest);

    bool putBaseline(std::uint64_t trace_digest,
                     std::uint64_t config_digest,
                     const StoredBaseline &baseline);

    // ---- engine results ----

    /**
     * Look up a cached engine cell. A corrupt or truncated entry is
     * rejected (CRC + bounds checks), deleted, and counted as a
     * miss, so the caller falls back to simulation.
     */
    std::optional<StoredEngineResult>
    loadResult(std::uint64_t trace_digest, std::uint64_t spec_digest,
               std::uint64_t config_digest);

    /**
     * Persist one engine cell's result plus its human-readable .meta
     * sidecar. Atomic; overwrites any existing entry for the key.
     */
    bool putResult(std::uint64_t trace_digest,
                   std::uint64_t spec_digest,
                   std::uint64_t config_digest,
                   const StoredEngineResult &result,
                   const StoredResultMeta &meta);

    /** Every result entry with a readable sidecar, ordered by save
     *  time (oldest first). */
    std::vector<StoredResultInfo> listResults();

    // ---- checkpoints ----

    /**
     * Persist one mid-trace simulator snapshot plus its sidecar.
     * Atomic; overwrites any existing entry for the key.
     *
     * @param spec_digest    engine-spec digest of the cell.
     * @param config_digest  system/timing config digest.
     * @param record_index   records stepped before the save.
     * @param state_digest   trace-prefix + warmup-boundary digest
     *                       (see the file comment).
     * @param blob           sim/checkpoint.hh encodeCheckpoint bytes.
     */
    bool putCheckpoint(std::uint64_t spec_digest,
                       std::uint64_t config_digest,
                       std::uint64_t record_index,
                       std::uint64_t state_digest,
                       const std::vector<std::uint8_t> &blob,
                       const StoredCheckpointMeta &meta);

    /**
     * Load a stored checkpoint blob. The blob framing (magic,
     * version, CRC) is verified here; a corrupt entry is deleted and
     * counted as a miss so the caller falls back to a cold start.
     */
    std::optional<std::vector<std::uint8_t>>
    loadCheckpoint(std::uint64_t spec_digest,
                   std::uint64_t config_digest,
                   std::uint64_t record_index,
                   std::uint64_t state_digest);

    /**
     * Record indices with stored checkpoints for a (spec, config)
     * pair, ascending and de-duplicated across state digests. The
     * caller filters by recomputing each candidate's state digest
     * against its own trace (a foreign workload's entry simply
     * misses on load).
     */
    std::vector<std::uint64_t>
    listCheckpointIndices(std::uint64_t spec_digest,
                          std::uint64_t config_digest);

    /**
     * Every stored (record index, state digest) checkpoint key for a
     * (spec, config) pair, sorted by (index, stateDigest). Unlike
     * listCheckpointIndices this exposes the state digests, letting
     * speculative execution enumerate off-key candidates (stale or
     * foreign-run states) it will validate at segment boundaries
     * instead of trusting. Malformed filenames are skipped; blob
     * integrity is still only checked by loadCheckpoint.
     */
    std::vector<StoredCheckpointKey>
    listCheckpoints(std::uint64_t spec_digest,
                    std::uint64_t config_digest);

    /**
     * Remove a checkpoint pair. Used by the driver when a blob
     * passed the CRC but failed to restore structurally (code skew):
     * dropping it lets the next run rewrite a good entry instead of
     * tripping over the stale one forever.
     */
    void dropCheckpoint(std::uint64_t spec_digest,
                        std::uint64_t config_digest,
                        std::uint64_t record_index,
                        std::uint64_t state_digest);

    // ---- maintenance ----

    /** Every entry currently in the store, oldest first. */
    std::vector<StoreEntry> list();

    /** Total bytes of all entries. */
    std::uint64_t totalBytes();

    /**
     * Evict oldest-touched entries until the store fits
     * `budget_bytes` (a trace's .trc/.meta pair and a result's
     * .res/.meta pair each count and are evicted as one unit).
     * @return bytes removed.
     */
    std::uint64_t evictWithin(std::uint64_t budget_bytes);

    /**
     * Evict down to the configured size budget (no-op when the
     * budget is 0/disabled). putTrace applies this automatically;
     * the cheap putBaseline/putResult writes do not, so batch
     * writers (the driver, once per sweep) call this when done.
     * @return bytes removed.
     */
    std::uint64_t enforceBudget();

    // ---- diagnostics ----

    std::uint64_t traceHits() const { return traceHits_; }
    std::uint64_t traceMisses() const { return traceMisses_; }
    std::uint64_t baselineHits() const { return baselineHits_; }
    std::uint64_t baselineMisses() const { return baselineMisses_; }
    std::uint64_t resultHits() const { return resultHits_; }
    std::uint64_t resultMisses() const { return resultMisses_; }
    std::uint64_t checkpointHits() const { return checkpointHits_; }
    std::uint64_t
    checkpointMisses() const
    {
        return checkpointMisses_;
    }

  private:
    std::string tracePath(const TraceKey &key, bool meta) const;
    std::string baselinePath(std::uint64_t trace_digest,
                             std::uint64_t config_digest) const;
    std::string resultPath(std::uint64_t trace_digest,
                           std::uint64_t spec_digest,
                           std::uint64_t config_digest,
                           bool meta) const;
    std::string checkpointPath(std::uint64_t spec_digest,
                               std::uint64_t config_digest,
                               std::uint64_t record_index,
                               std::uint64_t state_digest,
                               bool meta) const;
    /** Parse a .meta file. @return false when missing/malformed. */
    bool readMeta(const std::string &path, TraceEntryInfo &info);
    void touch(const std::string &path);
    void dropTraceEntry(const TraceKey &key);
    /** evictWithin body; caller holds writeMutex_. */
    std::uint64_t evictLockedWithin(std::uint64_t budget_bytes);

    std::string dir_;
    Options options_;
    bool usable_ = false;

    std::mutex writeMutex_; ///< serializes put + eviction scans

    std::atomic<std::uint64_t> traceHits_{0};
    std::atomic<std::uint64_t> traceMisses_{0};
    std::atomic<std::uint64_t> baselineHits_{0};
    std::atomic<std::uint64_t> baselineMisses_{0};
    std::atomic<std::uint64_t> resultHits_{0};
    std::atomic<std::uint64_t> resultMisses_{0};
    std::atomic<std::uint64_t> checkpointHits_{0};
    std::atomic<std::uint64_t> checkpointMisses_{0};
};

/**
 * FNV-1a digest of a key/config string — the store's generic
 * content-address hash for things that are not traces.
 */
std::uint64_t storeDigest(const std::string &text);

} // namespace stems

#endif // STEMS_STORE_TRACE_STORE_HH
