#include "store/trace_store.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <tuple>

#include <unistd.h>

#include "common/crc32.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/checkpoint.hh"
#include "trace/trace_io.hh"

namespace fs = std::filesystem;

namespace stems {

namespace {

/**
 * Process-wide mirrors of the per-instance hit/miss counters.
 * Per-instance counters stay authoritative for each store's own
 * diagnostics (tests assert them per instance); the registry copies
 * aggregate across every store in the process and feed the metrics
 * snapshot / run manifest.
 */
struct StoreMetrics
{
    Counter &traceHit, &traceMiss;
    Counter &baselineHit, &baselineMiss;
    Counter &resultHit, &resultMiss;
    Counter &ckptHit, &ckptMiss;

    StoreMetrics()
        : traceHit(registry().counter("store.trace.hit")),
          traceMiss(registry().counter("store.trace.miss")),
          baselineHit(registry().counter("store.baseline.hit")),
          baselineMiss(registry().counter("store.baseline.miss")),
          resultHit(registry().counter("store.result.hit")),
          resultMiss(registry().counter("store.result.miss")),
          ckptHit(registry().counter("store.ckpt.hit")),
          ckptMiss(registry().counter("store.ckpt.miss"))
    {
    }

    static MetricsRegistry &
    registry()
    {
        return MetricsRegistry::instance();
    }
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics metrics;
    return metrics;
}

constexpr char kTraceSubdir[] = "traces";
constexpr char kBaselineSubdir[] = "baselines";
constexpr char kResultSubdir[] = "results";
constexpr char kCheckpointSubdir[] = "checkpoints";
/// Bumped when the trace encoding or key scheme changes, so stale
/// stores miss instead of decoding garbage.
constexpr unsigned kStoreFormatVersion = 2;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

/** Binary baseline entry layout. */
struct PackedBaseline
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t misses;
    double cycles;
    double strideCycles;
    double strideIpc;
    std::uint8_t flags; ///< bit0 haveStride, bit1 haveTiming
} __attribute__((packed));

constexpr char kBaselineMagic[4] = {'S', 'T', 'B', 'L'};
constexpr std::uint32_t kBaselineVersion = 1;

constexpr char kResultMagic[4] = {'S', 'T', 'R', 'S'};
/// Bumped when StoredEngineResult's serialized layout changes.
constexpr std::uint32_t kResultVersion = 1;

// -- little byte-buffer codec for the variable-length result entries

void
appendBytes(std::vector<std::uint8_t> &buf, const void *data,
            std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf.insert(buf.end(), p, p + len);
}

template <typename T>
void
appendScalar(std::vector<std::uint8_t> &buf, T value)
{
    appendBytes(buf, &value, sizeof(value));
}

/** Bounds-checked sequential reader over a result entry's bytes. */
struct ByteReader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    template <typename T>
    T
    scalar()
    {
        T value{};
        if (pos + sizeof(T) > size) {
            ok = false;
            return value;
        }
        std::memcpy(&value, data + pos, sizeof(T));
        pos += sizeof(T);
        return value;
    }

    std::string
    str(std::size_t len)
    {
        if (pos + len > size) {
            ok = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data + pos),
                      len);
        pos += len;
        return s;
    }
};

std::vector<std::uint8_t>
encodeResult(const StoredEngineResult &r)
{
    std::vector<std::uint8_t> buf;
    appendBytes(buf, kResultMagic, sizeof(kResultMagic));
    appendScalar<std::uint32_t>(buf, kResultVersion);
    const SimStats &s = r.stats;
    appendScalar<std::uint64_t>(buf, s.records);
    appendScalar<std::uint64_t>(buf, s.reads);
    appendScalar<std::uint64_t>(buf, s.writes);
    appendScalar<std::uint64_t>(buf, s.invalidates);
    appendScalar<std::uint64_t>(buf, s.l1Hits);
    appendScalar<std::uint64_t>(buf, s.l2Hits);
    appendScalar<std::uint64_t>(buf, s.l2PrefetchHits);
    appendScalar<std::uint64_t>(buf, s.svbHits);
    appendScalar<std::uint64_t>(buf, s.offChipReads);
    appendScalar<std::uint64_t>(buf, s.offChipWrites);
    appendScalar<std::uint64_t>(buf, s.prefetchesIssued);
    appendScalar<std::uint64_t>(buf, s.overpredictions);
    appendScalar<double>(buf, s.cycles);
    appendScalar<std::uint64_t>(buf, s.instructions);
    appendScalar<std::uint32_t>(
        buf, static_cast<std::uint32_t>(r.extra.size()));
    for (const auto &kv : r.extra) { // std::map: stable key order
        appendScalar<std::uint32_t>(
            buf, static_cast<std::uint32_t>(kv.first.size()));
        appendBytes(buf, kv.first.data(), kv.first.size());
        appendScalar<double>(buf, kv.second);
    }
    std::uint32_t crc = crc32(buf.data(), buf.size());
    appendScalar<std::uint32_t>(buf, crc);
    return buf;
}

bool
decodeResult(const std::vector<std::uint8_t> &bytes,
             StoredEngineResult &out)
{
    if (bytes.size() < sizeof(kResultMagic) + 2 * sizeof(std::uint32_t))
        return false;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc,
                bytes.data() + bytes.size() - sizeof(stored_crc),
                sizeof(stored_crc));
    if (crc32(bytes.data(), bytes.size() - sizeof(stored_crc)) !=
        stored_crc)
        return false;
    ByteReader in{bytes.data(), bytes.size() - sizeof(stored_crc)};
    char magic[4];
    std::memcpy(magic, bytes.data(), sizeof(magic));
    in.pos = sizeof(magic);
    if (std::memcmp(magic, kResultMagic, sizeof(magic)) != 0)
        return false;
    if (in.scalar<std::uint32_t>() != kResultVersion)
        return false;
    SimStats &s = out.stats;
    s.records = in.scalar<std::uint64_t>();
    s.reads = in.scalar<std::uint64_t>();
    s.writes = in.scalar<std::uint64_t>();
    s.invalidates = in.scalar<std::uint64_t>();
    s.l1Hits = in.scalar<std::uint64_t>();
    s.l2Hits = in.scalar<std::uint64_t>();
    s.l2PrefetchHits = in.scalar<std::uint64_t>();
    s.svbHits = in.scalar<std::uint64_t>();
    s.offChipReads = in.scalar<std::uint64_t>();
    s.offChipWrites = in.scalar<std::uint64_t>();
    s.prefetchesIssued = in.scalar<std::uint64_t>();
    s.overpredictions = in.scalar<std::uint64_t>();
    s.cycles = in.scalar<double>();
    s.instructions = in.scalar<std::uint64_t>();
    std::uint32_t extras = in.scalar<std::uint32_t>();
    out.extra.clear();
    for (std::uint32_t i = 0; in.ok && i < extras; ++i) {
        std::uint32_t len = in.scalar<std::uint32_t>();
        std::string key = in.str(len);
        double value = in.scalar<double>();
        out.extra.emplace(std::move(key), value);
    }
    return in.ok && in.pos == in.size;
}

/** Write bytes to path atomically via a temp file + rename. */
bool
atomicWrite(const fs::path &path, const void *data, std::size_t len)
{
    fs::path tmp = path;
    tmp += ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = len == 0 || std::fwrite(data, 1, len, f) == len;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::int64_t
secondsSince(fs::file_time_type t)
{
    auto now = fs::file_time_type::clock::now();
    return std::chrono::duration_cast<std::chrono::seconds>(now - t)
        .count();
}

/** A deletable unit: one baseline file, or a .trc/.meta pair. */
struct EvictableEntry
{
    std::vector<fs::path> files;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
};

} // namespace

std::uint64_t
storeDigest(const std::string &text)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

TraceStore::TraceStore(std::string dir)
    : TraceStore(std::move(dir), Options())
{
}

TraceStore::TraceStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options)
{
    std::error_code ec;
    fs::create_directories(fs::path(dir_) / kTraceSubdir, ec);
    if (!ec)
        fs::create_directories(fs::path(dir_) / kBaselineSubdir, ec);
    if (!ec)
        fs::create_directories(fs::path(dir_) / kResultSubdir, ec);
    if (!ec) {
        fs::create_directories(fs::path(dir_) / kCheckpointSubdir,
                               ec);
    }
    usable_ = !ec && fs::is_directory(dir_, ec);
}

std::string
TraceStore::tracePath(const TraceKey &key, bool meta) const
{
    std::ostringstream os;
    os << key.workload << '\n'
       << key.records << '\n'
       << key.seed << '\n'
       << 'v' << kStoreFormatVersion;
    fs::path p = fs::path(dir_) / kTraceSubdir /
                 (hex16(storeDigest(os.str())) +
                  (meta ? ".meta" : ".trc"));
    return p.string();
}

std::string
TraceStore::baselinePath(std::uint64_t trace_digest,
                         std::uint64_t config_digest) const
{
    fs::path p = fs::path(dir_) / kBaselineSubdir /
                 (hex16(trace_digest) + "-" + hex16(config_digest) +
                  ".bl");
    return p.string();
}

std::string
TraceStore::resultPath(std::uint64_t trace_digest,
                       std::uint64_t spec_digest,
                       std::uint64_t config_digest, bool meta) const
{
    fs::path p = fs::path(dir_) / kResultSubdir /
                 (hex16(trace_digest) + "-" + hex16(spec_digest) +
                  "-" + hex16(config_digest) +
                  (meta ? ".meta" : ".res"));
    return p.string();
}

std::string
TraceStore::checkpointPath(std::uint64_t spec_digest,
                           std::uint64_t config_digest,
                           std::uint64_t record_index,
                           std::uint64_t state_digest,
                           bool meta) const
{
    fs::path p = fs::path(dir_) / kCheckpointSubdir /
                 (hex16(spec_digest) + "-" + hex16(config_digest) +
                  "-" + hex16(record_index) + "-" +
                  hex16(state_digest) +
                  (meta ? ".meta" : ".ckpt"));
    return p.string();
}

void
TraceStore::touch(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

bool
TraceStore::readMeta(const std::string &path, TraceEntryInfo &info)
{
    std::ifstream in(path);
    if (!in)
        return false;
    bool have_workload = false, have_records = false,
         have_seed = false, have_count = false, have_digest = false;
    std::string line;
    while (std::getline(in, line)) {
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        std::string k = line.substr(0, eq);
        std::string v = line.substr(eq + 1);
        char *end = nullptr;
        if (k == "workload") {
            info.key.workload = v;
            have_workload = true;
        } else if (k == "records") {
            info.key.records = std::strtoull(v.c_str(), &end, 10);
            have_records = end && *end == '\0';
        } else if (k == "seed") {
            info.key.seed = std::strtoull(v.c_str(), &end, 10);
            have_seed = end && *end == '\0';
        } else if (k == "count") {
            info.records = std::strtoull(v.c_str(), &end, 10);
            have_count = end && *end == '\0';
        } else if (k == "digest") {
            info.digest = std::strtoull(v.c_str(), &end, 16);
            have_digest = end && *end == '\0';
        }
    }
    return have_workload && have_records && have_seed && have_count &&
           have_digest;
}

std::optional<TraceEntryInfo>
TraceStore::findTrace(const TraceKey &key)
{
    if (!usable_)
        return std::nullopt;
    TraceEntryInfo info;
    if (!readMeta(tracePath(key, /*meta=*/true), info))
        return std::nullopt;
    // Guard against key-hash collisions and hand-edited metas.
    if (info.key.workload != key.workload ||
        info.key.records != key.records || info.key.seed != key.seed)
        return std::nullopt;
    std::error_code ec;
    info.bytes = fs::file_size(tracePath(key, /*meta=*/false), ec);
    if (ec)
        return std::nullopt; // meta without payload: incomplete entry
    return info;
}

std::unique_ptr<TraceSource>
TraceStore::openTrace(const TraceKey &key)
{
    ScopedSpan span("store.trace.get", "store");
    if (span.active())
        span.arg("workload", key.workload);
    if (!usable_) {
        ++traceMisses_;
        storeMetrics().traceMiss.add();
        return nullptr;
    }
    std::string path = tracePath(key, /*meta=*/false);
    auto src = MmapTraceSource::open(path);
    if (!src) {
        ++traceMisses_;
        storeMetrics().traceMiss.add();
        if (findTrace(key)) {
            // Entry exists but its payload is unreadable/corrupt:
            // drop it so the caller's regeneration can replace it.
            dropTraceEntry(key);
        }
        return nullptr;
    }
    ++traceHits_;
    storeMetrics().traceHit.add();
    touch(path);
    return src;
}

bool
TraceStore::loadTrace(const TraceKey &key, Trace &out)
{
    auto src = openTrace(key);
    if (!src)
        return false;
    src->readAll(out);
    if (out.size() != src->size()) {
        // Payload decoded short despite the CRC: treat as corrupt.
        dropTraceEntry(key);
        return false;
    }
    return true;
}

void
TraceStore::dropTraceEntry(const TraceKey &key)
{
    std::error_code ec;
    fs::remove(tracePath(key, false), ec);
    fs::remove(tracePath(key, true), ec);
}

std::optional<TraceEntryInfo>
TraceStore::putTrace(const TraceKey &key, const Trace &trace)
{
    ScopedSpan span("store.trace.put", "store");
    if (span.active())
        span.arg("workload", key.workload);
    if (!usable_)
        return std::nullopt;
    std::vector<std::uint8_t> bytes = encodeTraceV2(trace);
    TraceEntryInfo info;
    info.key = key;
    info.digest = traceDigest(trace);
    info.records = trace.size();
    info.bytes = bytes.size();

    std::ostringstream meta;
    meta << "workload=" << key.workload << '\n'
         << "records=" << key.records << '\n'
         << "seed=" << key.seed << '\n'
         << "count=" << info.records << '\n'
         << "digest=" << hex16(info.digest) << '\n';
    std::string meta_str = meta.str();

    std::lock_guard<std::mutex> lock(writeMutex_);
    // Payload first, meta last: a .meta file is the commit record,
    // so a crash between the two leaves no visible entry.
    if (!atomicWrite(tracePath(key, false), bytes.data(),
                     bytes.size()))
        return std::nullopt;
    if (!atomicWrite(tracePath(key, true), meta_str.data(),
                     meta_str.size())) {
        std::error_code ec;
        fs::remove(tracePath(key, false), ec);
        return std::nullopt;
    }
    if (options_.sizeBudgetBytes > 0)
        evictLockedWithin(options_.sizeBudgetBytes);
    return info;
}

std::optional<StoredBaseline>
TraceStore::loadBaseline(std::uint64_t trace_digest,
                         std::uint64_t config_digest)
{
    ScopedSpan span("store.baseline.get", "store");
    if (!usable_) {
        ++baselineMisses_;
        storeMetrics().baselineMiss.add();
        return std::nullopt;
    }
    std::string path = baselinePath(trace_digest, config_digest);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        ++baselineMisses_;
        storeMetrics().baselineMiss.add();
        return std::nullopt;
    }
    PackedBaseline p;
    std::uint32_t stored_crc = 0;
    bool ok = std::fread(&p, sizeof(p), 1, f) == 1 &&
              std::fread(&stored_crc, sizeof(stored_crc), 1, f) == 1 &&
              std::fgetc(f) == EOF;
    std::fclose(f);
    if (!ok ||
        std::memcmp(p.magic, kBaselineMagic, sizeof(p.magic)) != 0 ||
        p.version != kBaselineVersion ||
        crc32(&p, sizeof(p)) != stored_crc) {
        ++baselineMisses_;
        storeMetrics().baselineMiss.add();
        std::error_code ec;
        fs::remove(path, ec); // corrupt: drop so it gets recomputed
        return std::nullopt;
    }
    ++baselineHits_;
    storeMetrics().baselineHit.add();
    touch(path);
    StoredBaseline b;
    b.misses = p.misses;
    b.cycles = p.cycles;
    b.strideCycles = p.strideCycles;
    b.strideIpc = p.strideIpc;
    b.haveStride = (p.flags & 1) != 0;
    b.haveTiming = (p.flags & 2) != 0;
    return b;
}

bool
TraceStore::putBaseline(std::uint64_t trace_digest,
                        std::uint64_t config_digest,
                        const StoredBaseline &baseline)
{
    ScopedSpan span("store.baseline.put", "store");
    if (!usable_)
        return false;
    PackedBaseline p;
    std::memcpy(p.magic, kBaselineMagic, sizeof(p.magic));
    p.version = kBaselineVersion;
    p.misses = baseline.misses;
    p.cycles = baseline.cycles;
    p.strideCycles = baseline.strideCycles;
    p.strideIpc = baseline.strideIpc;
    p.flags = static_cast<std::uint8_t>(
        (baseline.haveStride ? 1 : 0) |
        (baseline.haveTiming ? 2 : 0));
    std::uint32_t crc = crc32(&p, sizeof(p));
    std::vector<std::uint8_t> bytes(sizeof(p) + sizeof(crc));
    std::memcpy(bytes.data(), &p, sizeof(p));
    std::memcpy(bytes.data() + sizeof(p), &crc, sizeof(crc));

    std::lock_guard<std::mutex> lock(writeMutex_);
    return atomicWrite(baselinePath(trace_digest, config_digest),
                       bytes.data(), bytes.size());
}

std::optional<StoredEngineResult>
TraceStore::loadResult(std::uint64_t trace_digest,
                       std::uint64_t spec_digest,
                       std::uint64_t config_digest)
{
    ScopedSpan span("store.result.get", "store");
    if (!usable_) {
        ++resultMisses_;
        storeMetrics().resultMiss.add();
        return std::nullopt;
    }
    std::string path = resultPath(trace_digest, spec_digest,
                                  config_digest, /*meta=*/false);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++resultMisses_;
        storeMetrics().resultMiss.add();
        return std::nullopt;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    StoredEngineResult result;
    if (!decodeResult(bytes, result)) {
        // Corrupt/truncated entry: drop both files so the caller's
        // re-simulation replaces the pair.
        ++resultMisses_;
        storeMetrics().resultMiss.add();
        std::error_code ec;
        fs::remove(path, ec);
        fs::remove(resultPath(trace_digest, spec_digest,
                              config_digest, /*meta=*/true),
                   ec);
        return std::nullopt;
    }
    ++resultHits_;
    storeMetrics().resultHit.add();
    touch(path);
    return result;
}

bool
TraceStore::putResult(std::uint64_t trace_digest,
                      std::uint64_t spec_digest,
                      std::uint64_t config_digest,
                      const StoredEngineResult &result,
                      const StoredResultMeta &meta)
{
    ScopedSpan span("store.result.put", "store");
    if (span.active()) {
        span.arg("workload", meta.workload);
        span.arg("engine", meta.engine);
    }
    if (!usable_)
        return false;
    std::vector<std::uint8_t> bytes = encodeResult(result);

    std::ostringstream ms;
    ms << "workload=" << meta.workload << '\n'
       << "engine=" << meta.engine << '\n'
       << "records=" << meta.records << '\n'
       << "seed=" << meta.seed << '\n'
       << std::setprecision(17) //
       << "coverage=" << meta.coverage << '\n'
       << "accuracy=" << meta.accuracy << '\n'
       << "speedup=" << meta.speedup << '\n'
       << "timing=" << (meta.timing ? 1 : 0) << '\n'
       << "savedAtUnix=" << std::time(nullptr) << '\n'
       << "trace=" << hex16(trace_digest) << '\n'
       << "spec=" << hex16(spec_digest) << '\n'
       << "config=" << hex16(config_digest) << '\n';
    std::string meta_str = ms.str();

    std::lock_guard<std::mutex> lock(writeMutex_);
    // Payload first, meta last — same commit order as traces.
    if (!atomicWrite(resultPath(trace_digest, spec_digest,
                                config_digest, false),
                     bytes.data(), bytes.size()))
        return false;
    if (!atomicWrite(resultPath(trace_digest, spec_digest,
                                config_digest, true),
                     meta_str.data(), meta_str.size())) {
        std::error_code ec;
        fs::remove(resultPath(trace_digest, spec_digest,
                              config_digest, false),
                   ec);
        return false;
    }
    // No per-put eviction: result entries are a few hundred bytes
    // and a sweep writes one per cell, so scanning the whole store
    // each time would dominate. The driver calls enforceBudget()
    // once per sweep instead.
    return true;
}

bool
TraceStore::putCheckpoint(std::uint64_t spec_digest,
                          std::uint64_t config_digest,
                          std::uint64_t record_index,
                          std::uint64_t state_digest,
                          const std::vector<std::uint8_t> &blob,
                          const StoredCheckpointMeta &meta)
{
    ScopedSpan span("store.ckpt.put", "store");
    if (span.active()) {
        span.arg("workload", meta.workload);
        span.arg("engine", meta.engine);
        span.arg("index", static_cast<std::uint64_t>(meta.index));
        span.arg("bytes", static_cast<std::uint64_t>(blob.size()));
    }
    if (!usable_)
        return false;

    std::ostringstream ms;
    ms << "workload=" << meta.workload << '\n'
       << "engine=" << meta.engine << '\n'
       << "index=" << meta.index << '\n'
       << "warmup=" << meta.warmup << '\n'
       << "savedAtUnix=" << std::time(nullptr) << '\n'
       << "spec=" << hex16(spec_digest) << '\n'
       << "config=" << hex16(config_digest) << '\n'
       << "state=" << hex16(state_digest) << '\n';
    std::string meta_str = ms.str();

    std::lock_guard<std::mutex> lock(writeMutex_);
    // Payload first, meta last — same commit order as traces.
    if (!atomicWrite(checkpointPath(spec_digest, config_digest,
                                    record_index, state_digest,
                                    false),
                     blob.data(), blob.size()))
        return false;
    if (!atomicWrite(checkpointPath(spec_digest, config_digest,
                                    record_index, state_digest,
                                    true),
                     meta_str.data(), meta_str.size())) {
        std::error_code ec;
        fs::remove(checkpointPath(spec_digest, config_digest,
                                  record_index, state_digest, false),
                   ec);
        return false;
    }
    // Like putBaseline/putResult, no per-put eviction scan: the
    // driver calls enforceBudget() once per sweep.
    return true;
}

std::optional<std::vector<std::uint8_t>>
TraceStore::loadCheckpoint(std::uint64_t spec_digest,
                           std::uint64_t config_digest,
                           std::uint64_t record_index,
                           std::uint64_t state_digest)
{
    ScopedSpan span("store.ckpt.get", "store");
    if (span.active())
        span.arg("index", record_index);
    if (!usable_) {
        ++checkpointMisses_;
        storeMetrics().ckptMiss.add();
        return std::nullopt;
    }
    std::string path = checkpointPath(spec_digest, config_digest,
                                      record_index, state_digest,
                                      /*meta=*/false);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++checkpointMisses_;
        storeMetrics().ckptMiss.add();
        return std::nullopt;
    }
    std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    std::uint64_t index = 0;
    if (!checkpointRecordIndex(blob, index) ||
        index != record_index) {
        // Corrupt/truncated/mis-keyed: drop the pair so the caller's
        // cold run rewrites it.
        ++checkpointMisses_;
        storeMetrics().ckptMiss.add();
        std::error_code ec;
        fs::remove(path, ec);
        fs::remove(checkpointPath(spec_digest, config_digest,
                                  record_index, state_digest, true),
                   ec);
        return std::nullopt;
    }
    ++checkpointHits_;
    storeMetrics().ckptHit.add();
    touch(path);
    return blob;
}

void
TraceStore::dropCheckpoint(std::uint64_t spec_digest,
                           std::uint64_t config_digest,
                           std::uint64_t record_index,
                           std::uint64_t state_digest)
{
    if (!usable_)
        return;
    std::error_code ec;
    fs::remove(checkpointPath(spec_digest, config_digest,
                              record_index, state_digest, false),
               ec);
    fs::remove(checkpointPath(spec_digest, config_digest,
                              record_index, state_digest, true),
               ec);
}

std::vector<std::uint64_t>
TraceStore::listCheckpointIndices(std::uint64_t spec_digest,
                                  std::uint64_t config_digest)
{
    std::vector<std::uint64_t> indices;
    if (!usable_)
        return indices;
    std::string prefix =
        hex16(spec_digest) + "-" + hex16(config_digest) + "-";
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kCheckpointSubdir, ec)) {
        if (de.path().extension() != ".ckpt")
            continue;
        std::string stem = de.path().stem().string();
        if (stem.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (stem.size() < prefix.size() + 16)
            continue;
        char *end = nullptr;
        std::uint64_t index = std::strtoull(
            stem.c_str() + prefix.size(), &end, 16);
        if (end != stem.c_str() + prefix.size() + 16)
            continue;
        indices.push_back(index);
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    return indices;
}

std::vector<StoredCheckpointKey>
TraceStore::listCheckpoints(std::uint64_t spec_digest,
                            std::uint64_t config_digest)
{
    std::vector<StoredCheckpointKey> keys;
    if (!usable_)
        return keys;
    std::string prefix =
        hex16(spec_digest) + "-" + hex16(config_digest) + "-";
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kCheckpointSubdir, ec)) {
        if (de.path().extension() != ".ckpt")
            continue;
        std::string stem = de.path().stem().string();
        // Full stem: spec-config-index-state, four hex16 fields.
        if (stem.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (stem.size() != prefix.size() + 16 + 1 + 16)
            continue;
        if (stem[prefix.size() + 16] != '-')
            continue;
        char *end = nullptr;
        std::uint64_t index = std::strtoull(
            stem.c_str() + prefix.size(), &end, 16);
        if (end != stem.c_str() + prefix.size() + 16)
            continue;
        std::uint64_t state = std::strtoull(
            stem.c_str() + prefix.size() + 17, &end, 16);
        if (end != stem.c_str() + stem.size())
            continue;
        keys.push_back(StoredCheckpointKey{index, state});
    }
    std::sort(keys.begin(), keys.end(),
              [](const StoredCheckpointKey &a,
                 const StoredCheckpointKey &b) {
                  return a.index != b.index ? a.index < b.index
                                            : a.stateDigest <
                                                  b.stateDigest;
              });
    keys.erase(std::unique(keys.begin(), keys.end(),
                           [](const StoredCheckpointKey &a,
                              const StoredCheckpointKey &b) {
                               return a.index == b.index &&
                                      a.stateDigest == b.stateDigest;
                           }),
               keys.end());
    return keys;
}

std::uint64_t
TraceStore::enforceBudget()
{
    if (!usable_ || options_.sizeBudgetBytes == 0)
        return 0;
    std::lock_guard<std::mutex> lock(writeMutex_);
    return evictLockedWithin(options_.sizeBudgetBytes);
}

std::vector<StoredResultInfo>
TraceStore::listResults()
{
    std::vector<StoredResultInfo> infos;
    if (!usable_)
        return infos;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kResultSubdir, ec)) {
        if (de.path().extension() != ".meta")
            continue;
        std::ifstream in(de.path());
        if (!in)
            continue;
        StoredResultInfo info;
        std::string line;
        while (std::getline(in, line)) {
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            std::string k = line.substr(0, eq);
            std::string v = line.substr(eq + 1);
            if (k == "workload")
                info.meta.workload = v;
            else if (k == "engine")
                info.meta.engine = v;
            else if (k == "records")
                info.meta.records =
                    std::strtoull(v.c_str(), nullptr, 10);
            else if (k == "seed")
                info.meta.seed =
                    std::strtoull(v.c_str(), nullptr, 10);
            else if (k == "coverage")
                info.meta.coverage = std::strtod(v.c_str(), nullptr);
            else if (k == "accuracy")
                info.meta.accuracy = std::strtod(v.c_str(), nullptr);
            else if (k == "speedup")
                info.meta.speedup = std::strtod(v.c_str(), nullptr);
            else if (k == "timing")
                info.meta.timing = v == "1";
            else if (k == "savedAtUnix")
                info.savedAtUnix =
                    std::strtoll(v.c_str(), nullptr, 10);
            else if (k == "trace")
                info.traceDigest =
                    std::strtoull(v.c_str(), nullptr, 16);
            else if (k == "spec")
                info.specDigest =
                    std::strtoull(v.c_str(), nullptr, 16);
            else if (k == "config")
                info.configDigest =
                    std::strtoull(v.c_str(), nullptr, 16);
        }
        if (info.meta.workload.empty() || info.meta.engine.empty())
            continue; // malformed sidecar
        fs::path res = de.path();
        res.replace_extension(".res");
        std::error_code fec;
        info.bytes = fs::file_size(res, fec);
        if (fec)
            continue; // sidecar without payload: incomplete entry
        infos.push_back(std::move(info));
    }
    std::sort(infos.begin(), infos.end(),
              [](const StoredResultInfo &a,
                 const StoredResultInfo &b) {
                  if (a.savedAtUnix != b.savedAtUnix)
                      return a.savedAtUnix < b.savedAtUnix;
                  return std::tie(a.meta.workload, a.meta.engine) <
                         std::tie(b.meta.workload, b.meta.engine);
              });
    return infos;
}

std::vector<StoreEntry>
TraceStore::list()
{
    std::vector<StoreEntry> entries;
    if (!usable_)
        return entries;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kTraceSubdir, ec)) {
        if (de.path().extension() != ".meta")
            continue;
        TraceEntryInfo info;
        if (!readMeta(de.path().string(), info))
            continue;
        fs::path trc = de.path();
        trc.replace_extension(".trc");
        std::error_code fec;
        StoreEntry e;
        e.kind = StoreEntry::Kind::kTrace;
        e.file = fs::relative(trc, dir_, fec).string();
        std::ostringstream desc;
        desc << info.key.workload << " records=" << info.key.records
             << " seed=" << info.key.seed << " count=" << info.records
             << " digest=" << hex16(info.digest);
        e.description = desc.str();
        e.bytes = fs::file_size(trc, fec);
        if (fec)
            continue;
        e.ageSeconds = secondsSince(fs::last_write_time(trc, fec));
        entries.push_back(std::move(e));
    }
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kBaselineSubdir, ec)) {
        if (de.path().extension() != ".bl")
            continue;
        std::error_code fec;
        StoreEntry e;
        e.kind = StoreEntry::Kind::kBaseline;
        e.file = fs::relative(de.path(), dir_, fec).string();
        e.description =
            "baseline " + de.path().stem().string();
        e.bytes = fs::file_size(de.path(), fec);
        if (fec)
            continue;
        e.ageSeconds =
            secondsSince(fs::last_write_time(de.path(), fec));
        entries.push_back(std::move(e));
    }
    for (const StoredResultInfo &info : listResults()) {
        std::error_code fec;
        fs::path res =
            fs::path(dir_) / kResultSubdir /
            (hex16(info.traceDigest) + "-" +
             hex16(info.specDigest) + "-" +
             hex16(info.configDigest) + ".res");
        StoreEntry e;
        e.kind = StoreEntry::Kind::kResult;
        e.file = fs::relative(res, dir_, fec).string();
        std::ostringstream desc;
        desc << info.meta.workload << " x " << info.meta.engine
             << " records=" << info.meta.records
             << " seed=" << info.meta.seed
             << (info.meta.timing ? " timed" : "");
        e.description = desc.str();
        e.bytes = info.bytes;
        e.ageSeconds = secondsSince(fs::last_write_time(res, fec));
        if (fec)
            continue;
        entries.push_back(std::move(e));
    }
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kCheckpointSubdir, ec)) {
        if (de.path().extension() != ".ckpt")
            continue;
        std::string workload, engine, index;
        fs::path meta = de.path();
        meta.replace_extension(".meta");
        std::ifstream in(meta);
        std::string line;
        while (in && std::getline(in, line)) {
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            std::string k = line.substr(0, eq);
            std::string v = line.substr(eq + 1);
            if (k == "workload")
                workload = v;
            else if (k == "engine")
                engine = v;
            else if (k == "index")
                index = v;
        }
        std::error_code fec;
        StoreEntry e;
        e.kind = StoreEntry::Kind::kCheckpoint;
        e.file = fs::relative(de.path(), dir_, fec).string();
        std::ostringstream desc;
        if (!workload.empty()) {
            desc << workload << " x " << engine << " @" << index
                 << " records";
        } else {
            desc << "checkpoint " << de.path().stem().string();
        }
        e.description = desc.str();
        e.bytes = fs::file_size(de.path(), fec);
        if (fec)
            continue;
        e.ageSeconds =
            secondsSince(fs::last_write_time(de.path(), fec));
        entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  return a.ageSeconds > b.ageSeconds;
              });
    return entries;
}

std::uint64_t
TraceStore::totalBytes()
{
    std::uint64_t total = 0;
    if (!usable_)
        return total;
    for (const char *sub : {kTraceSubdir, kBaselineSubdir,
                            kResultSubdir, kCheckpointSubdir}) {
        std::error_code ec;
        for (const auto &de :
             fs::directory_iterator(fs::path(dir_) / sub, ec)) {
            std::error_code fec;
            std::uint64_t sz = de.is_regular_file(fec)
                                   ? fs::file_size(de.path(), fec)
                                   : 0;
            if (!fec)
                total += sz;
        }
    }
    return total;
}

std::uint64_t
TraceStore::evictWithin(std::uint64_t budget_bytes)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return evictLockedWithin(budget_bytes);
}

std::uint64_t
TraceStore::evictLockedWithin(std::uint64_t budget_bytes)
{
    if (!usable_)
        return 0;

    std::vector<EvictableEntry> units;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kTraceSubdir, ec)) {
        if (de.path().extension() != ".trc")
            continue;
        std::error_code fec;
        EvictableEntry u;
        u.files.push_back(de.path());
        u.bytes = fs::file_size(de.path(), fec);
        u.mtime = fs::last_write_time(de.path(), fec);
        if (fec)
            continue;
        fs::path meta = de.path();
        meta.replace_extension(".meta");
        std::error_code mec;
        std::uint64_t msz = fs::file_size(meta, mec);
        if (!mec) {
            u.files.push_back(meta);
            u.bytes += msz;
        }
        total += u.bytes;
        units.push_back(std::move(u));
    }
    for (const auto &de : fs::directory_iterator(
             fs::path(dir_) / kBaselineSubdir, ec)) {
        if (de.path().extension() != ".bl")
            continue;
        std::error_code fec;
        EvictableEntry u;
        u.files.push_back(de.path());
        u.bytes = fs::file_size(de.path(), fec);
        u.mtime = fs::last_write_time(de.path(), fec);
        if (fec)
            continue;
        total += u.bytes;
        units.push_back(std::move(u));
    }
    // Results and checkpoints share the payload/.meta-pair unit
    // shape: each pair is evicted as one unit, like a trace's
    // .trc/.meta pair, under the one shared size budget.
    const std::pair<const char *, const char *> paired_kinds[] = {
        {kResultSubdir, ".res"},
        {kCheckpointSubdir, ".ckpt"},
    };
    for (const auto &[subdir, ext] : paired_kinds) {
        for (const auto &de : fs::directory_iterator(
                 fs::path(dir_) / subdir, ec)) {
            if (de.path().extension() != ext)
                continue;
            std::error_code fec;
            EvictableEntry u;
            u.files.push_back(de.path());
            u.bytes = fs::file_size(de.path(), fec);
            u.mtime = fs::last_write_time(de.path(), fec);
            if (fec)
                continue;
            fs::path meta = de.path();
            meta.replace_extension(".meta");
            std::error_code mec;
            std::uint64_t msz = fs::file_size(meta, mec);
            if (!mec) {
                u.files.push_back(meta);
                u.bytes += msz;
            }
            total += u.bytes;
            units.push_back(std::move(u));
        }
    }
    if (total <= budget_bytes)
        return 0;

    std::sort(units.begin(), units.end(),
              [](const EvictableEntry &a, const EvictableEntry &b) {
                  return a.mtime < b.mtime;
              });
    std::uint64_t removed = 0;
    for (const EvictableEntry &u : units) {
        if (total - removed <= budget_bytes)
            break;
        for (const fs::path &p : u.files) {
            std::error_code rec;
            fs::remove(p, rec);
        }
        removed += u.bytes;
    }
    return removed;
}

} // namespace stems
