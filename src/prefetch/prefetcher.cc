#include "prefetch/prefetcher.hh"

namespace stems {

// Anchor the vtable in one translation unit.

} // namespace stems
