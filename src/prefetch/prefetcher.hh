/**
 * @file
 * The prefetch-engine interface.
 *
 * Engines observe the memory system through training hooks invoked by
 * the prefetch simulator (src/sim/prefetch_sim) and emit prefetch
 * requests, which the simulator materializes into either the streamed
 * value buffer (stream-based engines: stride, TMS, STeMS) or the L2
 * with a prefetch tag (SMS).
 *
 * The "off-chip read" event stream deserves a note: it contains every
 * demand read that missed both cache levels, *including* those
 * satisfied by a prefetched block. This is the baseline-system miss
 * order — the sequence temporal engines record and reconstruct — so
 * sequence numbering must not change when coverage improves.
 */

#ifndef STEMS_PREFETCH_PREFETCHER_HH
#define STEMS_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stems {

/** Where a prefetched block should be placed. */
enum class PrefetchSink : std::uint8_t
{
    kBuffer = 0, ///< the engine's streamed value buffer
    kL2 = 1,     ///< the L2, tagged as a prefetch (SMS-style)
};

/** One block an engine wants fetched. */
struct PrefetchRequest
{
    Addr addr = 0;
    int streamId = -1; ///< owning stream queue (buffer sink only)
    PrefetchSink sink = PrefetchSink::kBuffer;
};

/** An off-chip demand read, as seen by the engines. */
struct OffChipRead
{
    Addr addr = 0;
    Pc pc = 0;
    /** Position in the off-chip read sequence (baseline miss order). */
    std::uint64_t seq = 0;
    /** True when a prefetched block satisfied the read. */
    bool covered = false;
    /** Owning stream of the covering block (-1 when not covered). */
    int streamId = -1;
};

/**
 * Base class for all prefetch engines.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Engine name for reports ("stride", "tms", "sms", "stems"). */
    virtual std::string name() const = 0;

    /** Capacity of the prefetch buffer this engine wants. */
    virtual std::size_t bufferCapacity() const { return 64; }

    /** Every demand L1 access (read or write), with its hit status. */
    virtual void
    onL1Access(Addr a, Pc pc, bool l1_hit)
    {
        (void)a;
        (void)pc;
        (void)l1_hit;
    }

    /** A block left the L1 (eviction or invalidation). */
    virtual void onL1BlockRemoved(Addr a) { (void)a; }

    /** An off-chip demand read (see file comment). */
    virtual void onOffChipRead(const OffChipRead &ev) { (void)ev; }

    /** A prefetched block was consumed by a demand access. */
    virtual void
    onPrefetchHit(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /** A prefetched block was discarded without ever being used. */
    virtual void
    onPrefetchDrop(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /**
     * A prefetch request was filtered as redundant (the block was
     * already cached or buffered). Unlike a drop, this is a benign
     * completion: streams should keep issuing past it.
     */
    virtual void
    onPrefetchFiltered(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /** A coherence invalidation arrived for a block. */
    virtual void onInvalidate(Addr a) { (void)a; }

    /**
     * Move this engine's pending prefetch requests into out.
     * Called by the simulator after each record's notifications.
     */
    virtual void drainRequests(std::vector<PrefetchRequest> &out) = 0;
};

} // namespace stems

#endif // STEMS_PREFETCH_PREFETCHER_HH
