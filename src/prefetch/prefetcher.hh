/**
 * @file
 * The prefetch-engine interface.
 *
 * Engines observe the memory system through training hooks invoked by
 * the prefetch simulator (src/sim/prefetch_sim) and emit prefetch
 * requests, which the simulator materializes into either the streamed
 * value buffer (stream-based engines: stride, TMS, STeMS) or the L2
 * with a prefetch tag (SMS).
 *
 * The "off-chip read" event stream deserves a note: it contains every
 * demand read that missed both cache levels, *including* those
 * satisfied by a prefetched block. This is the baseline-system miss
 * order — the sequence temporal engines record and reconstruct — so
 * sequence numbering must not change when coverage improves.
 */

#ifndef STEMS_PREFETCH_PREFETCHER_HH
#define STEMS_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/state_codec.hh"
#include "common/types.hh"

namespace stems {

/** Where a prefetched block should be placed. */
enum class PrefetchSink : std::uint8_t
{
    kBuffer = 0, ///< the engine's streamed value buffer
    kL2 = 1,     ///< the L2, tagged as a prefetch (SMS-style)
};

/** One block an engine wants fetched. */
struct PrefetchRequest
{
    Addr addr = 0;
    int streamId = -1; ///< owning stream queue (buffer sink only)
    PrefetchSink sink = PrefetchSink::kBuffer;
};

/** An off-chip demand read, as seen by the engines. */
struct OffChipRead
{
    Addr addr = 0;
    Pc pc = 0;
    /** Position in the off-chip read sequence (baseline miss order). */
    std::uint64_t seq = 0;
    /** True when a prefetched block satisfied the read. */
    bool covered = false;
    /** Owning stream of the covering block (-1 when not covered). */
    int streamId = -1;
};

/**
 * Base class for all prefetch engines.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Engine name for reports ("stride", "tms", "sms", "stems"). */
    virtual std::string name() const = 0;

    /** Capacity of the prefetch buffer this engine wants. */
    virtual std::size_t bufferCapacity() const { return 64; }

    /** Every demand L1 access (read or write), with its hit status. */
    virtual void
    onL1Access(Addr a, Pc pc, bool l1_hit)
    {
        (void)a;
        (void)pc;
        (void)l1_hit;
    }

    /** A block left the L1 (eviction or invalidation). */
    virtual void onL1BlockRemoved(Addr a) { (void)a; }

    /** An off-chip demand read (see file comment). */
    virtual void onOffChipRead(const OffChipRead &ev) { (void)ev; }

    /** A prefetched block was consumed by a demand access. */
    virtual void
    onPrefetchHit(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /** A prefetched block was discarded without ever being used. */
    virtual void
    onPrefetchDrop(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /**
     * A prefetch request was filtered as redundant (the block was
     * already cached or buffered). Unlike a drop, this is a benign
     * completion: streams should keep issuing past it.
     */
    virtual void
    onPrefetchFiltered(Addr a, int stream_id)
    {
        (void)a;
        (void)stream_id;
    }

    /** A coherence invalidation arrived for a block. */
    virtual void onInvalidate(Addr a) { (void)a; }

    /**
     * Move this engine's pending prefetch requests into out.
     * Called by the simulator after each record's notifications.
     */
    virtual void drainRequests(std::vector<PrefetchRequest> &out) = 0;

    /**
     * Serialize the engine's complete mutable state (checkpointing).
     * The contract — pinned per registered engine by
     * tests/checkpoint_test.cc — is that constructing a fresh engine
     * with the same parameters, loadState()ing this data into it and
     * continuing the simulation is bitwise identical to never having
     * stopped. The default saves nothing, which is only correct for
     * stateless engines; any engine with training state must
     * override both hooks (the snapshot-equivalence property test
     * fails otherwise).
     */
    virtual void saveState(StateWriter &w) const { (void)w; }

    /** Restore state written by saveState on an identically
     *  configured instance; structural mismatches fail the reader. */
    virtual void loadState(StateReader &r) { (void)r; }
};

/** Serialize a pending-request queue (engine saveState helpers). */
inline void
savePrefetchRequests(StateWriter &w,
                     const std::vector<PrefetchRequest> &reqs)
{
    w.u64(reqs.size());
    for (const PrefetchRequest &req : reqs) {
        w.u64(req.addr);
        w.i64(req.streamId);
        w.u8(static_cast<std::uint8_t>(req.sink));
    }
}

/** Restore a queue written by savePrefetchRequests. */
inline void
loadPrefetchRequests(StateReader &r,
                     std::vector<PrefetchRequest> &reqs)
{
    std::uint64_t n = r.u64();
    reqs.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        PrefetchRequest req;
        req.addr = r.u64();
        req.streamId = static_cast<int>(r.i64());
        std::uint8_t sink = r.u8();
        if (sink > 1) {
            r.fail();
            return;
        }
        req.sink = static_cast<PrefetchSink>(sink);
        reqs.push_back(req);
    }
}

} // namespace stems

#endif // STEMS_PREFETCH_PREFETCHER_HH
