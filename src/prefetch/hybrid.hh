/**
 * @file
 * Naive TMS+SMS hybrid — the strawman of paper Section 5.5: both
 * engines run concurrently and independently. Coverage approaches the
 * joint opportunity, but the engines interfere, generating roughly
 * 2-3x the overpredictions of STeMS.
 */

#ifndef STEMS_PREFETCH_HYBRID_HH
#define STEMS_PREFETCH_HYBRID_HH

#include "prefetch/sms.hh"
#include "prefetch/tms.hh"

namespace stems {

/**
 * TMS and SMS operating side by side with no coordination.
 */
class NaiveHybridPrefetcher : public Prefetcher
{
  public:
    NaiveHybridPrefetcher(TmsParams tms_params = {},
                          SmsParams sms_params = {});

    std::string name() const override { return "tms+sms"; }

    std::size_t bufferCapacity() const override;

    void onL1Access(Addr a, Pc pc, bool l1_hit) override;
    void onL1BlockRemoved(Addr a) override;
    void onOffChipRead(const OffChipRead &ev) override;
    void onPrefetchHit(Addr a, int stream_id) override;
    void onPrefetchDrop(Addr a, int stream_id) override;
    void onPrefetchFiltered(Addr a, int stream_id) override;
    void onInvalidate(Addr a) override;

    void drainRequests(std::vector<PrefetchRequest> &out) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    TmsPrefetcher tms_;
    SmsPrefetcher sms_;
};

} // namespace stems

#endif // STEMS_PREFETCH_HYBRID_HH
