#include "prefetch/stride.hh"

namespace stems {

StridePrefetcher::StridePrefetcher(StrideParams params)
    : params_(params),
      table_(params.tableEntries, params.tableEntries)
{
}

void
StridePrefetcher::onL1Access(Addr a, Pc pc, bool l1_hit)
{
    (void)l1_hit; // the table trains on all accesses

    Entry &e = table_.findOrInsert(pc);
    Addr block = blockNumber(a);

    if (!e.valid) {
        e.valid = true;
        e.lastBlock = block;
        e.stride = 0;
        e.confidence.set(0);
        return;
    }

    std::int64_t stride =
        static_cast<std::int64_t>(block) -
        static_cast<std::int64_t>(e.lastBlock);
    if (stride == 0)
        return; // same block: no training signal

    if (stride == e.stride) {
        e.confidence.increment();
    } else {
        e.confidence.decrement();
        if (e.confidence.value() == 0)
            e.stride = stride;
    }
    e.lastBlock = block;

    if (e.confidence.predicts() && e.stride != 0) {
        for (unsigned k = 1; k <= params_.degree; ++k) {
            std::int64_t target =
                static_cast<std::int64_t>(block) + e.stride * k;
            if (target <= 0)
                continue;
            PrefetchRequest req;
            req.addr = static_cast<Addr>(target) << kBlockShift;
            req.sink = PrefetchSink::kBuffer;
            pending_.push_back(req);
        }
    }
}

void
StridePrefetcher::drainRequests(std::vector<PrefetchRequest> &out)
{
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
}

namespace {
constexpr std::uint32_t kStrideTag = stateTag('S', 'T', 'R', 'D');
} // namespace

void
StridePrefetcher::saveState(StateWriter &w) const
{
    w.tag(kStrideTag);
    table_.saveState(w, [](StateWriter &sw, const Entry &e) {
        sw.boolean(e.valid);
        sw.u64(e.lastBlock);
        sw.i64(e.stride);
        sw.u32(e.confidence.value());
    });
    savePrefetchRequests(w, pending_);
}

void
StridePrefetcher::loadState(StateReader &r)
{
    r.tag(kStrideTag);
    table_.loadState(r, [](StateReader &sr, Entry &e) {
        e.valid = sr.boolean();
        e.lastBlock = sr.u64();
        e.stride = sr.i64();
        e.confidence.set(sr.u32());
    });
    loadPrefetchRequests(r, pending_);
}

} // namespace stems

// ---- registry hookup ----

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {
namespace {

// Bump when stride's serialized state or behaviour changes; folded
// into spec digests so old stored results/checkpoints are orphaned.
constexpr std::uint32_t kEngineStateVersion = 1;

const EngineRegistrar registerStride(
    "stride", 0, kEngineStateVersion,
    [](const SystemConfig &sys, const EngineOptions &) {
        return std::make_unique<StridePrefetcher>(sys.stride);
    });

} // namespace
} // namespace stems
