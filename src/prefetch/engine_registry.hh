/**
 * @file
 * Open registry of prefetch engines: name -> factory.
 *
 * Each engine translation unit self-registers a factory (via a static
 * EngineRegistrar), so adding an engine never touches the experiment
 * driver: drop in a new .cc, register a name, and every bench, example
 * and tool that enumerates the registry picks it up. Factories receive
 * the full SystemConfig plus per-instance EngineOptions overrides (the
 * knobs the ablation benches sweep), letting one registered engine
 * serve many parameterizations.
 *
 * The library is built as a CMake OBJECT library specifically so these
 * registrar objects survive static-archive dead stripping.
 */

#ifndef STEMS_PREFETCH_ENGINE_REGISTRY_HH
#define STEMS_PREFETCH_ENGINE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace stems {

struct SystemConfig; // sim/config.hh; taken by reference only

/**
 * Per-instance engine overrides. Every field is optional; unset
 * fields keep the SystemConfig (Table 1) defaults. Fields a given
 * engine has no use for are ignored by its factory.
 */
struct EngineOptions
{
    /// Apply the scientific-workload stream lookahead of 12 (paper
    /// Section 4.3). An explicit `lookahead` below wins over this.
    bool scientific = false;
    /// Stream lookahead (TMS/STeMS).
    std::optional<unsigned> lookahead;
    /// Temporal-buffer entries: TMS miss-order buffer / STeMS RMOB.
    std::optional<std::size_t> bufferEntries;
    /// Stream-queue count (TMS/STeMS).
    std::optional<std::size_t> streamQueues;
    /// 2-bit counters vs bit vectors in the SMS history.
    std::optional<bool> smsUseCounters;
    /// Reconstruction-buffer displacement search window (STeMS).
    std::optional<unsigned> displacementWindow;
};

/** Builds one engine instance from the system config and overrides. */
using EngineFactory = std::function<std::unique_ptr<Prefetcher>(
    const SystemConfig &, const EngineOptions &)>;

/**
 * Stable, human-readable description of an engine instantiation:
 * the registered name plus every EngineOptions field (unset fields
 * included explicitly, so adding a field changes every description)
 * and an optional probe identity, plus the engine's registered
 * state version (see EngineRegistry::add). Two instantiations behave
 * identically iff their descriptions (plus the SystemConfig) match,
 * which makes a digest of this string the persistent-cache key for
 * engine results and checkpoints (store/trace_store.hh) — and makes
 * a state-version bump orphan everything stored under the old code.
 */
std::string describeEngineSpec(const std::string &name,
                               const EngineOptions &options,
                               const std::string &probe_id = {});

/**
 * The process-wide engine registry. Thread-safe: registration and
 * lookup may race with driver worker threads instantiating engines.
 */
class EngineRegistry
{
  public:
    static EngineRegistry &instance();

    /**
     * Register a factory under a name.
     *
     * @param name  engine name ("stride", "tms", ...).
     * @param rank  enumeration position; names() lists ascending
     *              (rank, name). Builtins use 0-99; use >= 100 for
     *              extensions so the canonical order stays stable.
     * @param state_version  the engine's kEngineStateVersion: bump it
     *              whenever a code change alters the engine's
     *              serialized state or simulated behaviour. It is
     *              folded into describeEngineSpec(), so a bump
     *              orphans every stored result and checkpoint keyed
     *              under the old behaviour instead of resuming from
     *              stale state.
     * @return false (and no change) when the name is already taken.
     */
    bool add(std::string name, int rank, std::uint32_t state_version,
             EngineFactory factory);

    /**
     * The registered state version for a name; 0 when unknown.
     */
    std::uint32_t stateVersion(const std::string &name) const;

    /**
     * Test hook: override a registered engine's state version (used
     * to prove that a version bump orphans stored checkpoints).
     * No-op when the name is unknown. @return the previous version.
     */
    std::uint32_t setStateVersion(const std::string &name,
                                  std::uint32_t version);

    /** Instantiate an engine; null when the name is unknown. */
    std::unique_ptr<Prefetcher>
    make(const std::string &name, const SystemConfig &system,
         const EngineOptions &options = {}) const;

    /** True when a factory is registered under the name. */
    bool contains(const std::string &name) const;

    /** All registered names in stable (rank, name) order. */
    std::vector<std::string> names() const;

  private:
    EngineRegistry() = default;

    struct Entry
    {
        int rank = 0;
        std::uint32_t stateVersion = 0;
        EngineFactory factory;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

/** Static-init helper: registers a factory at load time. */
struct EngineRegistrar
{
    EngineRegistrar(const char *name, int rank,
                    std::uint32_t state_version, EngineFactory factory)
    {
        EngineRegistry::instance().add(name, rank, state_version,
                                       std::move(factory));
    }
};

} // namespace stems

#endif // STEMS_PREFETCH_ENGINE_REGISTRY_HH
