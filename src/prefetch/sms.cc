#include "prefetch/sms.hh"

#include "analysis/generations.hh" // spatialPatternIndex

namespace stems {

SmsPrefetcher::SmsPrefetcher(SmsParams params)
    : params_(params),
      agt_(params.agtEntries, params.agtEntries),
      pht_(params.phtEntries, params.phtWays)
{
}

void
SmsPrefetcher::trainPattern(std::uint64_t index, std::uint32_t mask)
{
    PhtEntry &e = pht_.findOrInsert(index);
    if (params_.useCounters) {
        for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
            bool accessed = (mask >> off) & 1u;
            std::uint8_t &c = e.counters[off];
            if (accessed) {
                if (c < 3)
                    ++c;
            } else if (c > 0) {
                --c;
            }
        }
    } else {
        // Bit-vector mode: replace the pattern outright (counter
        // value 3 encodes a set bit, 0 a clear bit).
        for (unsigned off = 0; off < kBlocksPerRegion; ++off)
            e.counters[off] = ((mask >> off) & 1u) ? 3 : 0;
    }
}

void
SmsPrefetcher::endGeneration(Addr region_base, AgtEntry &gen)
{
    trainPattern(gen.index, gen.mask);
    agt_.erase(regionNumber(region_base));
}

void
SmsPrefetcher::predict(Addr region_base, unsigned trigger_offset,
                       std::uint64_t index)
{
    const PhtEntry *e = pht_.peek(index);
    if (e == nullptr)
        return;
    for (unsigned off = 0; off < kBlocksPerRegion; ++off) {
        if (off == trigger_offset)
            continue;
        if (e->counters[off] >= params_.predictThreshold) {
            PrefetchRequest req;
            req.addr = addrFromRegionOffset(region_base, off);
            req.sink = PrefetchSink::kL2;
            pending_.push_back(req);
        }
    }
}

void
SmsPrefetcher::onL1Access(Addr a, Pc pc, bool l1_hit)
{
    (void)l1_hit; // generations track all L1 accesses

    Addr region = regionBase(a);
    unsigned offset = regionOffset(a);

    if (AgtEntry *gen = agt_.find(regionNumber(region))) {
        gen->mask |= 1u << offset;
        return;
    }

    // Trigger access: predict from history, then open a generation.
    std::uint64_t index = spatialPatternIndex(pc, offset);
    predict(region, offset, index);

    AgtEntry &gen = agt_.findOrInsert(
        regionNumber(region),
        [this](std::uint64_t region_number, AgtEntry &victim) {
            // AGT capacity eviction ends the victim's generation.
            (void)region_number;
            trainPattern(victim.index, victim.mask);
        });
    gen.index = index;
    gen.mask = 1u << offset;
}

void
SmsPrefetcher::onL1BlockRemoved(Addr a)
{
    Addr region = regionBase(a);
    AgtEntry *gen = agt_.find(regionNumber(region));
    if (gen == nullptr)
        return;
    if ((gen->mask >> regionOffset(a)) & 1u)
        endGeneration(region, *gen);
}

void
SmsPrefetcher::onInvalidate(Addr a)
{
    // Invalidations reaching the engine directly (block not in L1)
    // still terminate a generation that touched the block.
    onL1BlockRemoved(a);
}

void
SmsPrefetcher::drainRequests(std::vector<PrefetchRequest> &out)
{
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
}

namespace {
constexpr std::uint32_t kSmsTag = stateTag('S', 'M', 'S', '1');
} // namespace

void
SmsPrefetcher::saveState(StateWriter &w) const
{
    w.tag(kSmsTag);
    agt_.saveState(w, [](StateWriter &sw, const AgtEntry &e) {
        sw.u64(e.index);
        sw.u32(e.mask);
    });
    pht_.saveState(w, [](StateWriter &sw, const PhtEntry &e) {
        for (unsigned off = 0; off < kBlocksPerRegion; ++off)
            sw.u8(e.counters[off]);
    });
    savePrefetchRequests(w, pending_);
}

void
SmsPrefetcher::loadState(StateReader &r)
{
    r.tag(kSmsTag);
    agt_.loadState(r, [](StateReader &sr, AgtEntry &e) {
        e.index = sr.u64();
        e.mask = sr.u32();
    });
    pht_.loadState(r, [](StateReader &sr, PhtEntry &e) {
        for (unsigned off = 0; off < kBlocksPerRegion; ++off)
            e.counters[off] = sr.u8();
    });
    loadPrefetchRequests(r, pending_);
}

} // namespace stems

// ---- registry hookup ----

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {
namespace {

// Bump when SMS's serialized state or behaviour changes; folded
// into spec digests so old stored results/checkpoints are orphaned.
constexpr std::uint32_t kEngineStateVersion = 1;

const EngineRegistrar registerSms(
    "sms", 20, kEngineStateVersion,
    [](const SystemConfig &sys, const EngineOptions &opt) {
        SmsParams p = sys.sms;
        if (opt.smsUseCounters)
            p.useCounters = *opt.smsUseCounters;
        return std::make_unique<SmsPrefetcher>(p);
    });

} // namespace
} // namespace stems
