/**
 * @file
 * Temporal Memory Streaming (TMS) — Wenisch et al., ISCA 2005, as
 * summarized in Section 2.2 of the STeMS paper.
 *
 * TMS appends every off-chip read miss to a large circular buffer
 * (held in main memory; ~2 MB = 384K entries per processor) and keeps
 * an address index mapping each block to its most recent position.
 * An unpredicted miss locates its previous occurrence and streams the
 * blocks that followed it into a streamed value buffer, throttled to
 * application demand: one block on stream start (confidence ramp),
 * up to `lookahead` blocks once the stream proves useful.
 */

#ifndef STEMS_PREFETCH_TMS_HH
#define STEMS_PREFETCH_TMS_HH

#include <unordered_map>

#include "common/circular_buffer.hh"
#include "prefetch/prefetcher.hh"

namespace stems {

/** TMS configuration (paper defaults, Section 4.3). */
struct TmsParams
{
    /// Circular miss-order buffer entries (2 MB at ~5 B/entry).
    std::size_t bufferEntries = 384 * 1024;
    /// Stream queues.
    std::size_t numStreams = 8;
    /// Blocks kept in flight per confirmed stream.
    unsigned lookahead = 8;
    /// Streamed value buffer entries.
    std::size_t svbEntries = 64;
    /// Total outstanding prefetches across all streams. Throttling to
    /// below the SVB capacity keeps competing streams from evicting
    /// the productive stream's not-yet-consumed blocks.
    unsigned maxGlobalInFlight = 48;
    /// Refill the pending queue below this many entries.
    std::size_t refillLowWater = 4;
    /// Entries read from the buffer per refill.
    std::size_t refillChunk = 16;
    /// A miss matching one of the first N pending addresses of a
    /// stream re-synchronizes that stream instead of starting a new
    /// one.
    std::size_t resyncWindow = 4;
};

struct SystemConfig; // sim/config.hh
struct EngineOptions; // prefetch/engine_registry.hh

/**
 * The Table 1 TMS parameters with EngineOptions overrides applied
 * (shared by the "tms" and "tms+sms" registry factories).
 */
TmsParams tmsParamsFor(const SystemConfig &sys,
                       const EngineOptions &opt);

/**
 * The TMS engine.
 */
class TmsPrefetcher : public Prefetcher
{
  public:
    explicit TmsPrefetcher(TmsParams params = {});

    std::string name() const override { return "tms"; }

    std::size_t
    bufferCapacity() const override
    {
        return params_.svbEntries;
    }

    void onOffChipRead(const OffChipRead &ev) override;
    void onPrefetchHit(Addr a, int stream_id) override;
    void onPrefetchDrop(Addr a, int stream_id) override;
    void onPrefetchFiltered(Addr a, int stream_id) override;

    void drainRequests(std::vector<PrefetchRequest> &out) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    /** Streams started so far (diagnostics). */
    std::uint64_t streamsStarted() const { return streamsStarted_; }

  private:
    using Position = CircularBuffer<Addr>::Position;

    struct Stream
    {
        bool active = false;
        bool confirmed = false; ///< first prefetched block consumed
        /// Flat ring (storage retained across stream restarts; see
        /// StreamQueueSet::Stream::pending).
        RingQueue<Addr> pending;
        Position nextPos = 0; ///< next buffer position for refill
        std::uint64_t lru = 0;
        int inFlight = 0;
        /** Reallocation tag (see StreamQueueSet::Stream). */
        std::uint32_t generation = 0;

        /** In-place idle reset retaining ring storage and the
         *  generation tag. */
        void
        reset()
        {
            active = false;
            confirmed = false;
            pending.clear();
            nextPos = 0;
            lru = 0;
            inFlight = 0;
        }
    };

    static int
    encodeId(std::size_t index, std::uint32_t generation)
    {
        return static_cast<int>((generation << 4) |
                                static_cast<std::uint32_t>(index));
    }

    /** @return the stream, or null when the id is stale/invalid. */
    Stream *decodeId(int stream_id);

    void refill(Stream &s);
    void issueFrom(Stream &s, int id);
    bool tryResync(Addr a);
    void startStream(Addr a, Position prev_pos);

    TmsParams params_;
    int globalInFlight_ = 0;
    CircularBuffer<Addr> buffer_;
    /**
     * Block address -> most recent buffer position. Modelled after
     * the paper's main-memory hash table [25]; entries referring to
     * overwritten positions are detected and ignored on lookup.
     */
    std::unordered_map<Addr, Position> index_;
    std::vector<Stream> streams_;
    std::uint64_t clock_ = 0;
    std::uint64_t streamsStarted_ = 0;
    std::vector<PrefetchRequest> pending_;
};

} // namespace stems

#endif // STEMS_PREFETCH_TMS_HH
