/**
 * @file
 * PC-indexed stride prefetcher — the baseline system's prefetcher
 * (paper Table 1: 32-entry buffer, max 16 distinct strides).
 *
 * Classic reference-prediction-table design (Jouppi 1990; Sherwood et
 * al. 2000): per load PC, track the last block touched and the
 * inter-access stride; once the stride repeats (2-bit confidence),
 * fetch the next blocks ahead of the demand stream.
 */

#ifndef STEMS_PREFETCH_STRIDE_HH
#define STEMS_PREFETCH_STRIDE_HH

#include "common/lru_table.hh"
#include "common/sat_counter.hh"
#include "prefetch/prefetcher.hh"

namespace stems {

/** Stride prefetcher configuration. */
struct StrideParams
{
    /// Distinct PC-indexed stride entries (Table 1: 16).
    std::size_t tableEntries = 16;
    /// Prefetch buffer entries (Table 1: 32).
    std::size_t bufferEntries = 32;
    /// Blocks fetched ahead per confident prediction.
    unsigned degree = 2;
};

/**
 * The baseline stride prefetcher.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(StrideParams params = {});

    std::string name() const override { return "stride"; }

    std::size_t
    bufferCapacity() const override
    {
        return params_.bufferEntries;
    }

    void onL1Access(Addr a, Pc pc, bool l1_hit) override;

    void drainRequests(std::vector<PrefetchRequest> &out) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    struct Entry
    {
        Addr lastBlock = 0;     ///< block number of last access
        std::int64_t stride = 0; ///< blocks between accesses
        SatCounter confidence{2, 0};
        bool valid = false;
    };

    StrideParams params_;
    LruTable<Entry> table_;
    std::vector<PrefetchRequest> pending_;
};

} // namespace stems

#endif // STEMS_PREFETCH_STRIDE_HH
