#include "prefetch/engine_registry.hh"

#include <algorithm>
#include <sstream>

namespace stems {

namespace {

template <typename T>
void
describeField(std::ostream &os, const char *key,
              const std::optional<T> &value)
{
    os << key << '=';
    if (value)
        os << *value;
    else
        os << "unset";
    os << '\n';
}

} // namespace

std::string
describeEngineSpec(const std::string &name,
                   const EngineOptions &options,
                   const std::string &probe_id)
{
    std::ostringstream os;
    os << "engine=" << name << '\n'
       << "stateVersion="
       << EngineRegistry::instance().stateVersion(name) << '\n'
       << "scientific=" << (options.scientific ? 1 : 0) << '\n';
    describeField(os, "lookahead", options.lookahead);
    describeField(os, "bufferEntries", options.bufferEntries);
    describeField(os, "streamQueues", options.streamQueues);
    describeField(os, "smsUseCounters", options.smsUseCounters);
    describeField(os, "displacementWindow",
                  options.displacementWindow);
    os << "probe=" << (probe_id.empty() ? "none" : probe_id) << '\n';
    return os.str();
}

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    return registry;
}

bool
EngineRegistry::add(std::string name, int rank,
                    std::uint32_t state_version, EngineFactory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_
        .emplace(std::move(name),
                 Entry{rank, state_version, std::move(factory)})
        .second;
}

std::uint32_t
EngineRegistry::stateVersion(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.stateVersion;
}

std::uint32_t
EngineRegistry::setStateVersion(const std::string &name,
                                std::uint32_t version)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return 0;
    std::uint32_t previous = it->second.stateVersion;
    it->second.stateVersion = version;
    return previous;
}

std::unique_ptr<Prefetcher>
EngineRegistry::make(const std::string &name,
                     const SystemConfig &system,
                     const EngineOptions &options) const
{
    EngineFactory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(name);
        if (it == entries_.end())
            return nullptr;
        factory = it->second.factory;
    }
    return factory(system, options);
}

bool
EngineRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
}

std::vector<std::string>
EngineRegistry::names() const
{
    std::vector<std::pair<int, std::string>> ranked;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ranked.reserve(entries_.size());
        for (const auto &kv : entries_)
            ranked.emplace_back(kv.second.rank, kv.first);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<std::string> names;
    names.reserve(ranked.size());
    for (auto &r : ranked)
        names.push_back(std::move(r.second));
    return names;
}

} // namespace stems
