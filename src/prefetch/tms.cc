#include "prefetch/tms.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace stems {

TmsPrefetcher::TmsPrefetcher(TmsParams params)
    : params_(params),
      buffer_(params.bufferEntries),
      streams_(params.numStreams)
{
    // In steady state the index holds one entry per live buffer slot;
    // reserving up front avoids the rehash cascade while the buffer
    // first fills (384K inserts with paper defaults).
    index_.reserve(params.bufferEntries);
}

void
TmsPrefetcher::refill(Stream &s)
{
    while (s.pending.size() < params_.refillChunk) {
        auto entry = buffer_.at(s.nextPos);
        if (!entry.has_value())
            break; // overwritten or caught up with the append frontier
        s.pending.push_back(*entry);
        ++s.nextPos;
    }
}

void
TmsPrefetcher::issueFrom(Stream &s, int id)
{
    unsigned target = s.confirmed ? params_.lookahead : 1;
    while (s.inFlight < static_cast<int>(target) &&
           globalInFlight_ <
               static_cast<int>(params_.maxGlobalInFlight) &&
           !s.pending.empty()) {
        PrefetchRequest req;
        req.addr = blockAlign(s.pending.front());
        req.streamId = id;
        req.sink = PrefetchSink::kBuffer;
        pending_.push_back(req);
        s.pending.pop_front();
        ++s.inFlight;
        ++globalInFlight_;
    }
    if (s.pending.size() < params_.refillLowWater)
        refill(s);
}

bool
TmsPrefetcher::tryResync(Addr a)
{
    Addr block = blockAlign(a);
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        Stream &s = streams_[i];
        if (!s.active)
            continue;
        std::size_t window =
            std::min(params_.resyncWindow, s.pending.size());
        for (std::size_t k = 0; k < window; ++k) {
            if (blockAlign(s.pending[k]) == block) {
                // The stream was right but had not issued this block
                // yet: skip past it and stream on with confidence.
                s.pending.dropFront(k + 1);
                s.confirmed = true;
                s.lru = ++clock_;
                issueFrom(s, encodeId(i, s.generation));
                return true;
            }
        }
    }
    return false;
}

TmsPrefetcher::Stream *
TmsPrefetcher::decodeId(int stream_id)
{
    if (stream_id < 0)
        return nullptr;
    std::size_t index = static_cast<std::uint32_t>(stream_id) & 0xF;
    std::uint32_t generation =
        static_cast<std::uint32_t>(stream_id) >> 4;
    if (index >= streams_.size())
        return nullptr;
    Stream &s = streams_[index];
    if (!s.active || s.generation != generation)
        return nullptr;
    return &s;
}

void
TmsPrefetcher::startStream(Addr a, Position prev_pos)
{
    (void)a;
    // Victimize an inactive stream if possible, else the LRU one.
    std::size_t victim = 0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (!streams_[i].active) {
            victim = i;
            break;
        }
        if (streams_[i].lru < streams_[victim].lru)
            victim = i;
    }
    Stream &s = streams_[victim];
    // Reclaim the victim's outstanding budget: its buffered blocks
    // are no longer protected and will age out of the SVB.
    globalInFlight_ -= s.inFlight;
    if (globalInFlight_ < 0)
        globalInFlight_ = 0;
    s.reset();
    ++s.generation;
    s.active = true;
    s.nextPos = prev_pos + 1;
    s.lru = ++clock_;
    ++streamsStarted_;
    refill(s);
    issueFrom(s, encodeId(victim, s.generation));
}

void
TmsPrefetcher::onOffChipRead(const OffChipRead &ev)
{
    Addr block = blockAlign(ev.addr);

    // Locate the previous occurrence before recording this one.
    Position prev_pos = 0;
    bool have_prev = false;
    if (auto it = index_.find(block); it != index_.end()) {
        auto prev = buffer_.at(it->second);
        if (prev.has_value() && blockAlign(*prev) == block) {
            prev_pos = it->second;
            have_prev = true;
        }
    }

    // Record the miss and update the index.
    index_[block] = buffer_.append(block);

    if (ev.covered)
        return; // the owning stream advances via onPrefetchHit

    // Unpredicted miss: re-synchronize an existing stream or start a
    // new one from the previous occurrence.
    if (tryResync(block))
        return;
    if (have_prev)
        startStream(block, prev_pos);
}

void
TmsPrefetcher::onPrefetchHit(Addr a, int stream_id)
{
    (void)a;
    Stream *s = decodeId(stream_id);
    if (!s)
        return; // stale stream: its budget was reclaimed at realloc
    if (s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
    }
    s->confirmed = true;
    s->lru = ++clock_;
    issueFrom(*s, stream_id);
}

void
TmsPrefetcher::onPrefetchDrop(Addr a, int stream_id)
{
    (void)a;
    // A dropped (evicted-unused) block means the stream ran ahead of
    // demand or is wrong: release the in-flight slot but do not push
    // further (pushing on eviction feedback livelocks the SVB).
    Stream *s = decodeId(stream_id);
    if (s && s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
    }
}

void
TmsPrefetcher::onPrefetchFiltered(Addr a, int stream_id)
{
    (void)a;
    Stream *s = decodeId(stream_id);
    if (!s)
        return;
    if (s->inFlight > 0) {
        --s->inFlight;
        if (globalInFlight_ > 0)
            --globalInFlight_;
        // The block was already resident: stream past it.
        issueFrom(*s, stream_id);
    }
}

void
TmsPrefetcher::drainRequests(std::vector<PrefetchRequest> &out)
{
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
}

namespace {
constexpr std::uint32_t kTmsTag = stateTag('T', 'M', 'S', '1');
} // namespace

void
TmsPrefetcher::saveState(StateWriter &w) const
{
    w.tag(kTmsTag);
    w.i64(globalInFlight_);
    w.u64(clock_);
    w.u64(streamsStarted_);
    buffer_.saveState(
        w, [](StateWriter &sw, const Addr &a) { sw.u64(a); });
    // Key-sorted: blob bytes must depend only on logical state so
    // speculative boundary validation can byte-compare checkpoints.
    std::vector<std::pair<Addr, Position>> entries(index_.begin(),
                                                   index_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u64(entries.size());
    for (const auto &kv : entries) {
        w.u64(kv.first);
        w.u64(kv.second);
    }
    w.u64(streams_.size());
    for (const Stream &s : streams_) {
        w.boolean(s.active);
        w.boolean(s.confirmed);
        w.u64(s.pending.size());
        for (std::size_t k = 0; k < s.pending.size(); ++k)
            w.u64(s.pending[k]);
        w.u64(s.nextPos);
        w.u64(s.lru);
        w.i64(s.inFlight);
        w.u32(s.generation);
    }
    savePrefetchRequests(w, pending_);
}

void
TmsPrefetcher::loadState(StateReader &r)
{
    r.tag(kTmsTag);
    globalInFlight_ = static_cast<int>(r.i64());
    clock_ = r.u64();
    streamsStarted_ = r.u64();
    buffer_.loadState(
        r, [](StateReader &sr, Addr &a) { a = sr.u64(); });
    std::uint64_t entries = r.u64();
    index_.clear();
    for (std::uint64_t i = 0; i < entries && r.ok(); ++i) {
        Addr a = r.u64();
        Position p = r.u64();
        index_[a] = p;
    }
    if (r.u64() != streams_.size()) {
        r.fail();
        return;
    }
    for (Stream &s : streams_) {
        s.reset();
        s.generation = 0;
        s.active = r.boolean();
        s.confirmed = r.boolean();
        std::uint64_t pending = r.u64();
        if (pending > buffer_.capacity()) {
            r.fail();
            return;
        }
        for (std::uint64_t i = 0; i < pending && r.ok(); ++i)
            s.pending.push_back(r.u64());
        s.nextPos = r.u64();
        s.lru = r.u64();
        s.inFlight = static_cast<int>(r.i64());
        s.generation = r.u32();
        if (!r.ok())
            return;
    }
    loadPrefetchRequests(r, pending_);
}

} // namespace stems

// ---- registry hookup ----

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {

TmsParams
tmsParamsFor(const SystemConfig &sys, const EngineOptions &opt)
{
    TmsParams p = sys.tms;
    if (opt.scientific)
        p.lookahead = 12;
    if (opt.lookahead)
        p.lookahead = *opt.lookahead;
    if (opt.bufferEntries)
        p.bufferEntries = *opt.bufferEntries;
    if (opt.streamQueues)
        p.numStreams = *opt.streamQueues;
    return p;
}

namespace {

// Bump when TMS's serialized state or behaviour changes; folded
// into spec digests so old stored results/checkpoints are orphaned.
constexpr std::uint32_t kEngineStateVersion = 1;

const EngineRegistrar registerTms(
    "tms", 10, kEngineStateVersion,
    [](const SystemConfig &sys, const EngineOptions &opt) {
        return std::make_unique<TmsPrefetcher>(tmsParamsFor(sys, opt));
    });

} // namespace
} // namespace stems
