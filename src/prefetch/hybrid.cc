#include "prefetch/hybrid.hh"

namespace stems {

NaiveHybridPrefetcher::NaiveHybridPrefetcher(TmsParams tms_params,
                                             SmsParams sms_params)
    : tms_(tms_params), sms_(sms_params)
{
}

std::size_t
NaiveHybridPrefetcher::bufferCapacity() const
{
    return tms_.bufferCapacity();
}

void
NaiveHybridPrefetcher::onL1Access(Addr a, Pc pc, bool l1_hit)
{
    tms_.onL1Access(a, pc, l1_hit);
    sms_.onL1Access(a, pc, l1_hit);
}

void
NaiveHybridPrefetcher::onL1BlockRemoved(Addr a)
{
    tms_.onL1BlockRemoved(a);
    sms_.onL1BlockRemoved(a);
}

void
NaiveHybridPrefetcher::onOffChipRead(const OffChipRead &ev)
{
    tms_.onOffChipRead(ev);
    sms_.onOffChipRead(ev);
}

void
NaiveHybridPrefetcher::onPrefetchHit(Addr a, int stream_id)
{
    // Buffer-sink prefetches belong to TMS streams; SMS sinks into
    // the L2 and receives no stream feedback.
    tms_.onPrefetchHit(a, stream_id);
}

void
NaiveHybridPrefetcher::onPrefetchDrop(Addr a, int stream_id)
{
    tms_.onPrefetchDrop(a, stream_id);
}

void
NaiveHybridPrefetcher::onPrefetchFiltered(Addr a, int stream_id)
{
    tms_.onPrefetchFiltered(a, stream_id);
}

void
NaiveHybridPrefetcher::onInvalidate(Addr a)
{
    tms_.onInvalidate(a);
    sms_.onInvalidate(a);
}

void
NaiveHybridPrefetcher::drainRequests(std::vector<PrefetchRequest> &out)
{
    tms_.drainRequests(out);
    sms_.drainRequests(out);
}

void
NaiveHybridPrefetcher::saveState(StateWriter &w) const
{
    tms_.saveState(w);
    sms_.saveState(w);
}

void
NaiveHybridPrefetcher::loadState(StateReader &r)
{
    tms_.loadState(r);
    sms_.loadState(r);
}

} // namespace stems

// ---- registry hookup ----

#include "prefetch/engine_registry.hh"
#include "sim/config.hh"

namespace stems {
namespace {

// Bump when the hybrid's serialized state or behaviour changes;
// folded into spec digests so old stored entries are orphaned.
constexpr std::uint32_t kEngineStateVersion = 1;

const EngineRegistrar registerNaiveHybrid(
    "tms+sms", 40, kEngineStateVersion,
    [](const SystemConfig &sys, const EngineOptions &opt) {
        SmsParams sp = sys.sms;
        if (opt.smsUseCounters)
            sp.useCounters = *opt.smsUseCounters;
        return std::make_unique<NaiveHybridPrefetcher>(
            tmsParamsFor(sys, opt), sp);
    });

} // namespace
} // namespace stems
