/**
 * @file
 * Spatial Memory Streaming (SMS) — Somogyi et al., ISCA 2006, as
 * summarized in Section 2.4 of the STeMS paper.
 *
 * SMS observes L1 accesses over spatial generations (trigger access
 * until a touched block leaves the L1 or the AGT evicts the region),
 * stores the per-generation footprint in a pattern history table
 * indexed by trigger PC+offset, and on the next trigger with a
 * matching index fetches the predicted blocks into the cache.
 *
 * The history can hold either the original bit vectors or the 2-bit
 * saturating counters the STeMS paper substitutes (Section 4.3:
 * "2-bit counters attain the same coverage while roughly halving
 * overpredictions") — the ablation bench compares the two.
 */

#ifndef STEMS_PREFETCH_SMS_HH
#define STEMS_PREFETCH_SMS_HH

#include "common/lru_table.hh"
#include "prefetch/prefetcher.hh"

namespace stems {

/** SMS configuration (paper defaults). */
struct SmsParams
{
    /// Active generation table entries.
    std::size_t agtEntries = 64;
    /// Pattern history table entries.
    std::size_t phtEntries = 16384;
    std::size_t phtWays = 8;
    /// Use 2-bit saturating counters instead of bit vectors.
    bool useCounters = true;
    /// Counter value required to predict an offset (counters mode).
    unsigned predictThreshold = 2;
};

/**
 * The SMS engine. Prefetches sink into the L2 with a prefetch tag.
 */
class SmsPrefetcher : public Prefetcher
{
  public:
    explicit SmsPrefetcher(SmsParams params = {});

    std::string name() const override { return "sms"; }

    void onL1Access(Addr a, Pc pc, bool l1_hit) override;
    void onL1BlockRemoved(Addr a) override;
    void onInvalidate(Addr a) override;

    void drainRequests(std::vector<PrefetchRequest> &out) override;

    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

    /** Patterns learned so far (diagnostics). */
    std::size_t trainedPatterns() const { return pht_.occupancy(); }

  private:
    /** One active generation. */
    struct AgtEntry
    {
        std::uint64_t index = 0;   ///< PHT index of the trigger
        std::uint32_t mask = 0;    ///< blocks touched this generation
    };

    /** One pattern: 2-bit counter per block offset. */
    struct PhtEntry
    {
        std::uint8_t counters[kBlocksPerRegion] = {};
    };

    void trainPattern(std::uint64_t index, std::uint32_t mask);
    void endGeneration(Addr region_base, AgtEntry &gen);
    void predict(Addr region_base, unsigned trigger_offset,
                 std::uint64_t index);

    SmsParams params_;
    LruTable<AgtEntry> agt_; ///< keyed by region base address
    LruTable<PhtEntry> pht_; ///< keyed by pattern index
    std::vector<PrefetchRequest> pending_;
};

} // namespace stems

#endif // STEMS_PREFETCH_SMS_HH
