/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We own the generator (PCG32, O'Neill 2014) rather than using
 * std::mt19937 so that every experiment in the repository is reproducible
 * bit-for-bit across standard libraries and platforms.
 */

#ifndef STEMS_COMMON_RNG_HH
#define STEMS_COMMON_RNG_HH

#include <cstdint>

namespace stems {

/**
 * PCG32 pseudo-random number generator.
 *
 * 64-bit state, 32-bit output, period 2^64. Streams with different
 * sequence constants never collide, which lets each workload component
 * own an independent generator derived from one experiment seed.
 */
class Rng
{
  public:
    /**
     * Construct a generator.
     *
     * @param seed  initial state seed.
     * @param seq   stream-selector constant; generators with different
     *              seq values produce independent sequences.
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL)
    {
        inc_ = (seq << 1) | 1u;
        state_ = 0;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        auto rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform value in [0, bound); bound = 0 yields 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        // Debiased modulo (Lemire-style rejection).
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform value in [lo, hi] (inclusive). */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return next() < static_cast<std::uint32_t>(p * 4294967296.0);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /**
     * Derive an independent child generator.
     *
     * @param salt  distinguishes children of the same parent.
     */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(next64() ^ (salt * 0x9e3779b97f4a7c15ULL),
                   salt * 2 + 1);
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

} // namespace stems

#endif // STEMS_COMMON_RNG_HH
