/**
 * @file
 * Fundamental types and address-geometry helpers shared by every module.
 *
 * The memory system models 64-byte cache blocks grouped into 2 KB spatial
 * regions (32 blocks per region), matching the configuration used
 * throughout the STeMS paper (Somogyi et al., ISCA 2009, Section 2.4 and
 * Table 1).
 */

#ifndef STEMS_COMMON_TYPES_HH
#define STEMS_COMMON_TYPES_HH

#include <cstdint>

namespace stems {

/** Byte address in the modelled (physical) address space. */
using Addr = std::uint64_t;

/** Program counter of a memory instruction. */
using Pc = std::uint64_t;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

/** Log2 of the cache-block size (64 B blocks). */
inline constexpr unsigned kBlockShift = 6;

/** Cache-block size in bytes. */
inline constexpr Addr kBlockBytes = Addr{1} << kBlockShift;

/** Log2 of the spatial-region size (2 KB regions). */
inline constexpr unsigned kRegionShift = 11;

/** Spatial-region size in bytes. */
inline constexpr Addr kRegionBytes = Addr{1} << kRegionShift;

/** Number of cache blocks in a spatial region (32). */
inline constexpr unsigned kBlocksPerRegion =
    1u << (kRegionShift - kBlockShift);

/** Strip the block offset, yielding the block-aligned address. */
constexpr Addr blockAlign(Addr a) { return a & ~(kBlockBytes - 1); }

/** Block number (address divided by the block size). */
constexpr Addr blockNumber(Addr a) { return a >> kBlockShift; }

/** Strip the region offset, yielding the region-aligned base address. */
constexpr Addr regionBase(Addr a) { return a & ~(kRegionBytes - 1); }

/** Region number (address divided by the region size). */
constexpr Addr regionNumber(Addr a) { return a >> kRegionShift; }

/**
 * Block offset of an address within its spatial region, in blocks.
 *
 * @return a value in [0, kBlocksPerRegion).
 */
constexpr unsigned
regionOffset(Addr a)
{
    return static_cast<unsigned>((a >> kBlockShift) &
                                 (kBlocksPerRegion - 1));
}

/** Rebuild a block address from a region base and a block offset. */
constexpr Addr
addrFromRegionOffset(Addr region_base, unsigned offset)
{
    return region_base + (Addr{offset} << kBlockShift);
}

} // namespace stems

#endif // STEMS_COMMON_TYPES_HH
