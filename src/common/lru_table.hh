/**
 * @file
 * Set-associative, LRU-replaced lookup table.
 *
 * The finite predictor structures in this repository (SMS PHT, STeMS
 * PST, AGT, stride table) are all bounded set-associative tables with
 * LRU replacement; this template captures that discipline once.
 *
 * Layout: structure-of-arrays. Keys, LRU stamps and values live in
 * three parallel arrays indexed by slot (set * ways + way). A lookup
 * probes the set's key lane — one contiguous cache line of keys for
 * typical associativities — and touches the value lane just on a
 * hit; the hot miss path never drags value bytes (40-byte PST
 * entries, AGT generations) through the cache. There is no validity
 * lane: a slot is invalid exactly when its stamp is 0, because
 * touch() stamps from 1 and erase() zeroes the stamp. That makes the
 * victim scan a branchless running-min over the set's contiguous
 * stamp lane (conditional moves, no data-dependent branches to
 * mispredict on random recency order) which picks the first free way
 * or the first-index LRU way in one pass.
 *
 * Replacement semantics are identical to the historical
 * array-of-structs implementation (kept as the property-test oracle
 * in tests/reference_lru_table.hh): first invalid way, else the
 * lowest-stamp way, first-index tie-break; the serialized state is
 * byte-identical as well.
 */

#ifndef STEMS_COMMON_LRU_TABLE_HH
#define STEMS_COMMON_LRU_TABLE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stems {

/**
 * A set-associative table mapping a 64-bit key to a value, with
 * per-set LRU replacement.
 *
 * @tparam V  value type; must be default-constructible.
 */
template <typename V>
class LruTable
{
  public:
    /**
     * Construct a table.
     *
     * @param entries  total entry count (rounded up to a multiple of
     *                 the associativity).
     * @param ways     associativity (> 0).
     */
    LruTable(std::size_t entries, std::size_t ways)
        : ways_(ways)
    {
        assert(ways > 0 && entries > 0);
        sets_ = (entries + ways - 1) / ways;
        std::size_t slots = sets_ * ways_;
        keys_.assign(slots, 0);
        lru_.assign(slots, 0);
        values_.resize(slots);
    }

    /**
     * Find a value, promoting it to MRU on hit.
     *
     * @return pointer to the value, or nullptr on miss.
     */
    V *
    find(std::uint64_t key)
    {
        std::size_t i = findIndex(key);
        if (i == kNone)
            return nullptr;
        touch(i);
        return &values_[i];
    }

    /** Find without updating recency. @return nullptr on miss. */
    const V *
    peek(std::uint64_t key) const
    {
        std::size_t i = findIndex(key);
        return i == kNone ? nullptr : &values_[i];
    }

    /**
     * Find or insert (default-constructed) a value; promotes to MRU.
     *
     * When insertion evicts a valid victim, the callback is invoked
     * with the victim's key and value before it is destroyed. The
     * callback is a template parameter (not std::function) so the
     * common empty/lambda cases inline.
     *
     * @return reference to the (possibly new) value.
     */
    template <typename OnEvict>
    V &
    findOrInsert(std::uint64_t key, OnEvict &&on_evict)
    {
        if (V *v = find(key))
            return *v;
        std::size_t i = victimIndex(key);
        if (lru_[i])
            on_evict(keys_[i], values_[i]);
        keys_[i] = key;
        values_[i] = V();
        touch(i);
        return values_[i];
    }

    /** findOrInsert without an eviction observer. */
    V &
    findOrInsert(std::uint64_t key)
    {
        return findOrInsert(key, [](std::uint64_t, V &) {});
    }

    /** Remove an entry if present. @return true when removed. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = findIndex(key);
        if (i == kNone)
            return false;
        lru_[i] = 0;
        return true;
    }

    /** Number of valid entries across all sets. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (std::uint64_t s : lru_)
            n += s != 0;
        return n;
    }

    /** Total capacity. */
    std::size_t capacity() const { return sets_ * ways_; }

    /**
     * Visit every valid entry (key, value). The visitor is a template
     * parameter so it inlines.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < lru_.size(); ++i)
            if (lru_[i])
                fn(keys_[i], values_[i]);
    }

    /**
     * Serialize the full table state (checkpointing). Slot positions
     * are preserved exactly: which way of a set holds an entry decides
     * future victim scans, so positional identity is part of the
     * behavioural state.
     *
     * @param save_value  (Writer &, const V &) serializer for values.
     */
    template <typename Writer, typename SaveFn>
    void
    saveState(Writer &w, SaveFn &&save_value) const
    {
        w.u64(ways_);
        w.u64(sets_);
        w.u64(clock_);
        for (std::size_t i = 0; i < lru_.size(); ++i) {
            w.boolean(lru_[i] != 0);
            if (lru_[i]) {
                w.u64(keys_[i]);
                w.u64(lru_[i]);
                save_value(w, values_[i]);
            }
        }
    }

    /**
     * Restore state written by saveState into a table of identical
     * geometry (fails the reader otherwise).
     *
     * @param load_value  (Reader &, V &) deserializer for values.
     */
    template <typename Reader, typename LoadFn>
    void
    loadState(Reader &r, LoadFn &&load_value)
    {
        if (r.u64() != ways_ || r.u64() != sets_) {
            r.fail();
            return;
        }
        clock_ = r.u64();
        for (std::size_t i = 0; i < lru_.size(); ++i) {
            bool valid = r.boolean();
            keys_[i] = 0;
            lru_[i] = 0;
            values_[i] = V();
            if (valid) {
                keys_[i] = r.u64();
                lru_[i] = r.u64();
                load_value(r, values_[i]);
            }
            if (!r.ok())
                return;
        }
    }

  private:
    static constexpr std::size_t kNone = ~std::size_t{0};

    std::size_t setIndex(std::uint64_t key) const
    {
        // Multiplicative hash spreads structured keys (PC+offset
        // concatenations) across sets.
        return static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ULL) >> 32) % sets_;
    }

    std::size_t
    findIndex(std::uint64_t key) const
    {
        std::size_t base = setIndex(key) * ways_;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t i = base + w;
            if (keys_[i] == key && lru_[i])
                return i;
        }
        return kNone;
    }

    std::size_t
    victimIndex(std::uint64_t key) const
    {
        // An invalid way holds stamp 0, strictly older than any valid
        // entry (touch() stamps from 1), so one strict-< min scan
        // selects the first invalid way when one exists and the
        // first-index LRU way otherwise — the oracle's semantics. The
        // ternaries compile to conditional moves; a branching
        // running-min mispredicts on random recency order, which
        // measured 3-4x slower on full sets.
        std::size_t base = setIndex(key) * ways_;
        std::size_t victim = base;
        std::uint64_t victim_stamp = lru_[base];
        for (std::size_t w = 1; w < ways_; ++w) {
            std::uint64_t stamp = lru_[base + w];
            bool older = stamp < victim_stamp;
            victim = older ? base + w : victim;
            victim_stamp = older ? stamp : victim_stamp;
        }
        return victim;
    }

    void touch(std::size_t i) { lru_[i] = ++clock_; }

    std::size_t ways_;
    std::size_t sets_ = 0;
    std::uint64_t clock_ = 0;
    /// Parallel slot lanes (structure-of-arrays); index = set * ways
    /// + way. Stamp 0 in lru_ marks the slot invalid (keys_/values_
    /// are then stale and ignored).
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> lru_;
    std::vector<V> values_;
};

} // namespace stems

#endif // STEMS_COMMON_LRU_TABLE_HH
