/**
 * @file
 * Saturating counter, the hysteresis element used by the SMS/STeMS
 * pattern tables (paper Section 4.3: 2-bit counters per block).
 */

#ifndef STEMS_COMMON_SAT_COUNTER_HH
#define STEMS_COMMON_SAT_COUNTER_HH

#include <cstdint>

namespace stems {

/**
 * An N-bit saturating counter.
 *
 * Counts in [0, 2^bits - 1]. The prediction threshold convention used
 * throughout this repository: a counter predicts "taken" when its value
 * is in the upper half of the range (e.g., >= 2 for a 2-bit counter).
 */
class SatCounter
{
  public:
    /** Construct with a bit width and an initial value. */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1),
          value_(initial > max_ ? max_ : initial)
    {}

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to a specific value (clamped). */
    void set(unsigned v) { value_ = v > max_ ? max_ : v; }

    /** Current value. */
    unsigned value() const { return value_; }

    /** Maximum representable value. */
    unsigned max() const { return max_; }

    /** True when the counter is in the predicting (upper) half. */
    bool predicts() const { return value_ > max_ / 2; }

  private:
    std::uint8_t max_;
    std::uint8_t value_;
};

} // namespace stems

#endif // STEMS_COMMON_SAT_COUNTER_HH
