/**
 * @file
 * Allocation-avoidance primitives for the engine hot paths.
 *
 * Profiling (bench/micro_engines) showed the per-record cost of the
 * STeMS engines is dominated not by hashing or arithmetic but by heap
 * churn: every AGT generation carried a std::vector for its spatial
 * sequence, and every stream start built fresh scratch vectors. Two
 * small tools remove that:
 *
 *  - InlineVec<T, N>: a fixed-capacity vector whose storage is inline
 *    in the object. Bounded predictor state (an AGT generation records
 *    at most one element per region block offset, so its sequence is
 *    <= kBlocksPerRegion) fits a hard compile-time cap, and the
 *    container then allocates nothing, copies with memcpy-class cost,
 *    and keeps the elements on the same cache lines as the rest of
 *    the entry.
 *
 *  - ScratchPool<T>: recycles std::vector<T> buffers between uses.
 *    Call sites that genuinely need unbounded scratch (stream-start
 *    address lists, reconstruction backbones) borrow a vector, fill
 *    it, and return it; after warm-up the pool reaches a steady state
 *    where no use allocates.
 *
 * Lifetime rules: InlineVec owns its elements like any value type.
 * A ScratchPool::Handle must not outlive its pool, and the borrowed
 * vector is cleared on release but keeps its capacity — that retained
 * capacity IS the optimization, so pools should be long-lived members
 * of the engine that uses them.
 */

#ifndef STEMS_COMMON_ARENA_HH
#define STEMS_COMMON_ARENA_HH

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace stems {

/**
 * Fixed-capacity vector with inline storage and no heap use.
 *
 * Only the first size() elements are meaningful; the rest are
 * default-constructed padding so the container stays trivially
 * copyable for trivially-copyable T (which keeps LruTable value
 * moves cheap).
 *
 * @tparam T  element type (default-constructible, copyable).
 * @tparam N  compile-time capacity.
 */
template <typename T, std::size_t N>
class InlineVec
{
  public:
    using value_type = T;

    InlineVec() = default;

    /** Append; capacity overflow is a programming error (assert). */
    void
    push_back(const T &v)
    {
        assert(size_ < N);
        elems_[size_++] = v;
    }

    /** Construct-in-place append. */
    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        assert(size_ < N);
        elems_[size_] = T(std::forward<Args>(args)...);
        return elems_[size_++];
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr std::size_t capacity() { return N; }
    bool full() const { return size_ == N; }

    T &operator[](std::size_t i)
    {
        assert(i < size_);
        return elems_[i];
    }
    const T &operator[](std::size_t i) const
    {
        assert(i < size_);
        return elems_[i];
    }

    T &back()
    {
        assert(size_ > 0);
        return elems_[size_ - 1];
    }
    const T &back() const
    {
        assert(size_ > 0);
        return elems_[size_ - 1];
    }

    T *begin() { return elems_; }
    T *end() { return elems_ + size_; }
    const T *begin() const { return elems_; }
    const T *end() const { return elems_ + size_; }
    T *data() { return elems_; }
    const T *data() const { return elems_; }

  private:
    T elems_[N] = {};
    std::size_t size_ = 0;
};

/**
 * Free-list of recycled std::vector<T> scratch buffers.
 *
 * acquire() returns a RAII handle over an empty vector (possibly with
 * retained capacity from an earlier use); the vector returns to the
 * free list when the handle dies.
 */
template <typename T>
class ScratchPool
{
  public:
    /** Borrowed vector; returns to the pool on destruction. */
    class Handle
    {
      public:
        Handle(ScratchPool &pool, std::vector<T> &&buf)
            : pool_(&pool), buf_(std::move(buf))
        {
        }
        Handle(Handle &&other) noexcept
            : pool_(other.pool_), buf_(std::move(other.buf_))
        {
            other.pool_ = nullptr;
        }
        Handle(const Handle &) = delete;
        Handle &operator=(const Handle &) = delete;
        Handle &operator=(Handle &&) = delete;

        ~Handle()
        {
            if (pool_)
                pool_->release(std::move(buf_));
        }

        std::vector<T> &operator*() { return buf_; }
        std::vector<T> *operator->() { return &buf_; }
        std::vector<T> &get() { return buf_; }

      private:
        ScratchPool *pool_;
        std::vector<T> buf_;
    };

    /** Borrow an empty vector (capacity retained from past uses). */
    Handle
    acquire()
    {
        if (free_.empty())
            return Handle(*this, std::vector<T>());
        std::vector<T> buf = std::move(free_.back());
        free_.pop_back();
        return Handle(*this, std::move(buf));
    }

    /** Buffers currently resting in the pool (diagnostics/tests). */
    std::size_t idle() const { return free_.size(); }

  private:
    friend class Handle;

    void
    release(std::vector<T> &&buf)
    {
        buf.clear();
        free_.push_back(std::move(buf));
    }

    std::vector<std::vector<T>> free_;
};

} // namespace stems

#endif // STEMS_COMMON_ARENA_HH
