#include "common/stats.hh"

#include <cstdio>

namespace stems {

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

std::string
fmtPct(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtX(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
    return buf;
}

void
Histogram::add(std::int64_t bucket, std::uint64_t count)
{
    buckets_[bucket] += count;
    total_ += count;
    weightedSum_ += bucket * static_cast<std::int64_t>(count);
}

std::uint64_t
Histogram::count(std::int64_t bucket) const
{
    auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0 : it->second;
}

double
Histogram::fractionBetween(std::int64_t lo, std::int64_t hi) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t n = 0;
    for (auto it = buckets_.lower_bound(lo);
         it != buckets_.end() && it->first <= hi; ++it) {
        n += it->second;
    }
    return ratio(n, total_);
}

double
Histogram::fractionWithin(std::int64_t window) const
{
    return fractionBetween(-window, window);
}

double
Histogram::mean() const
{
    return total_ == 0
        ? 0.0
        : static_cast<double>(weightedSum_) /
              static_cast<double>(total_);
}

std::int64_t
Histogram::minBucket() const
{
    return buckets_.empty() ? 0 : buckets_.begin()->first;
}

std::int64_t
Histogram::maxBucket() const
{
    return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

} // namespace stems
