/**
 * @file
 * Binary state codec for simulator checkpoints.
 *
 * StateWriter/StateReader are the low-level byte layer under the
 * per-component saveState/loadState methods (sim/checkpoint.hh glues
 * them into CRC-framed checkpoint blobs). The format is a plain
 * little-endian field stream with no self-description: writer and
 * reader must agree on the field sequence, which the per-component
 * `tag()` markers cross-check so a structural mismatch fails fast
 * (reader goes !ok()) instead of mis-decoding into a subtly wrong
 * simulator state.
 *
 * The reader is fully bounds-checked and never throws: any underflow
 * or tag mismatch latches a failure flag, subsequent reads return
 * zero values, and the caller checks ok() once at the end. This is
 * the same "reject, never mis-decode" discipline as the v2 trace
 * codec (trace/trace_codec.hh).
 */

#ifndef STEMS_COMMON_STATE_CODEC_HH
#define STEMS_COMMON_STATE_CODEC_HH

#include <cstdint>
#include <cstring>
#include <vector>

namespace stems {

/** Build a section tag from a 4-character mnemonic ("CACH", ...). */
constexpr std::uint32_t
stateTag(char a, char b, char c, char d)
{
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(a))) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b))
            << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(d))
            << 24);
}

/** Appends state fields to a growing byte buffer. */
class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u64(std::uint64_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    i64(std::int64_t v)
    {
        raw(&v, sizeof(v));
    }

    /** Bit-exact double (round-trips NaNs and signed zeros). */
    void
    f64(double v)
    {
        raw(&v, sizeof(v));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Section marker; the reader verifies it. */
    void
    tag(std::uint32_t t)
    {
        u32(t);
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    void
    raw(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked sequential reader over a state byte stream. */
class StateReader
{
  public:
    StateReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    double
    f64()
    {
        double v = 0;
        raw(&v, sizeof(v));
        return v;
    }

    bool boolean() { return u8() != 0; }

    /** Verify a section marker written by StateWriter::tag. */
    void
    tag(std::uint32_t expect)
    {
        if (u32() != expect)
            fail();
    }

    /** Latch a structural failure (e.g. a size mismatch). */
    void fail() { ok_ = false; }

    /** True while every read so far succeeded. */
    bool ok() const { return ok_; }

    /** True when the whole stream was consumed. */
    bool atEnd() const { return ok_ && pos_ == size_; }

  private:
    void
    raw(void *out, std::size_t len)
    {
        if (!ok_ || len > size_ - pos_) {
            fail();
            std::memset(out, 0, len);
            return;
        }
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace stems

#endif // STEMS_COMMON_STATE_CODEC_HH
