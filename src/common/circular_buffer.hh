/**
 * @file
 * Fixed-capacity circular buffer with monotonically increasing logical
 * positions.
 *
 * This is the storage discipline behind both the TMS miss-order buffer
 * and the STeMS region miss-order buffer (RMOB): entries are appended
 * forever, old entries are overwritten once capacity wraps, and
 * consumers address entries by their *logical* append position so that a
 * stale position can be detected (it has been overwritten) rather than
 * silently aliasing onto newer data.
 */

#ifndef STEMS_COMMON_CIRCULAR_BUFFER_HH
#define STEMS_COMMON_CIRCULAR_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace stems {

/**
 * Append-only circular buffer addressed by logical position.
 *
 * @tparam T  entry type; must be copyable.
 */
template <typename T>
class CircularBuffer
{
  public:
    /** Logical position of an appended entry (0 for the first append). */
    using Position = std::uint64_t;

    /** Construct with a fixed capacity (> 0). */
    explicit CircularBuffer(std::size_t capacity)
        : storage_(capacity)
    {
        assert(capacity > 0);
    }

    /**
     * Append an entry, overwriting the oldest once full.
     *
     * @return the logical position assigned to the entry.
     */
    Position
    append(const T &entry)
    {
        storage_[static_cast<std::size_t>(next_ % storage_.size())] =
            entry;
        return next_++;
    }

    /** Total number of entries ever appended. */
    Position size() const { return next_; }

    /** Fixed capacity. */
    std::size_t capacity() const { return storage_.size(); }

    /** Number of entries currently live (not yet overwritten). */
    std::size_t
    live() const
    {
        return next_ < storage_.size()
            ? static_cast<std::size_t>(next_)
            : storage_.size();
    }

    /** Oldest logical position still resident. */
    Position
    oldest() const
    {
        return next_ < storage_.size() ? 0 : next_ - storage_.size();
    }

    /** True when the position is still resident (not overwritten). */
    bool
    contains(Position pos) const
    {
        return pos < next_ && pos >= oldest();
    }

    /**
     * Fetch the entry at a logical position.
     *
     * @return std::nullopt when the position was overwritten or has not
     *         been written yet.
     */
    std::optional<T>
    at(Position pos) const
    {
        if (!contains(pos))
            return std::nullopt;
        return storage_[static_cast<std::size_t>(pos % storage_.size())];
    }

    /**
     * Serialize the buffer state (checkpointing): the append frontier
     * plus every still-live entry in logical-position order.
     *
     * @param save_entry  (Writer &, const T &) serializer.
     */
    template <typename Writer, typename SaveFn>
    void
    saveState(Writer &w, SaveFn &&save_entry) const
    {
        w.u64(storage_.size());
        w.u64(next_);
        for (Position p = oldest(); p < next_; ++p)
            save_entry(
                w, storage_[static_cast<std::size_t>(p %
                                                     storage_.size())]);
    }

    /**
     * Restore state written by saveState into a buffer of identical
     * capacity (fails the reader otherwise). Overwritten positions
     * are unobservable, so only live entries are restored.
     *
     * @param load_entry  (Reader &, T &) deserializer.
     */
    template <typename Reader, typename LoadFn>
    void
    loadState(Reader &r, LoadFn &&load_entry)
    {
        if (r.u64() != storage_.size()) {
            r.fail();
            return;
        }
        next_ = r.u64();
        for (T &e : storage_)
            e = T{};
        for (Position p = oldest(); p < next_ && r.ok(); ++p)
            load_entry(
                r, storage_[static_cast<std::size_t>(p %
                                                     storage_.size())]);
    }

  private:
    std::vector<T> storage_;
    Position next_ = 0;
};

} // namespace stems

#endif // STEMS_COMMON_CIRCULAR_BUFFER_HH
