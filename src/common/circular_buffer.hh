/**
 * @file
 * Fixed-capacity circular buffer with monotonically increasing logical
 * positions.
 *
 * This is the storage discipline behind both the TMS miss-order buffer
 * and the STeMS region miss-order buffer (RMOB): entries are appended
 * forever, old entries are overwritten once capacity wraps, and
 * consumers address entries by their *logical* append position so that a
 * stale position can be detected (it has been overwritten) rather than
 * silently aliasing onto newer data.
 */

#ifndef STEMS_COMMON_CIRCULAR_BUFFER_HH
#define STEMS_COMMON_CIRCULAR_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace stems {

/**
 * Append-only circular buffer addressed by logical position.
 *
 * @tparam T  entry type; must be copyable.
 */
template <typename T>
class CircularBuffer
{
  public:
    /** Logical position of an appended entry (0 for the first append). */
    using Position = std::uint64_t;

    /** Construct with a fixed capacity (> 0). */
    explicit CircularBuffer(std::size_t capacity)
        : storage_(capacity)
    {
        assert(capacity > 0);
    }

    /**
     * Append an entry, overwriting the oldest once full.
     *
     * @return the logical position assigned to the entry.
     */
    Position
    append(const T &entry)
    {
        storage_[static_cast<std::size_t>(next_ % storage_.size())] =
            entry;
        return next_++;
    }

    /** Total number of entries ever appended. */
    Position size() const { return next_; }

    /** Fixed capacity. */
    std::size_t capacity() const { return storage_.size(); }

    /** Number of entries currently live (not yet overwritten). */
    std::size_t
    live() const
    {
        return next_ < storage_.size()
            ? static_cast<std::size_t>(next_)
            : storage_.size();
    }

    /** Oldest logical position still resident. */
    Position
    oldest() const
    {
        return next_ < storage_.size() ? 0 : next_ - storage_.size();
    }

    /** True when the position is still resident (not overwritten). */
    bool
    contains(Position pos) const
    {
        return pos < next_ && pos >= oldest();
    }

    /**
     * Fetch the entry at a logical position.
     *
     * @return std::nullopt when the position was overwritten or has not
     *         been written yet.
     */
    std::optional<T>
    at(Position pos) const
    {
        if (!contains(pos))
            return std::nullopt;
        return storage_[static_cast<std::size_t>(pos % storage_.size())];
    }

    /**
     * Serialize the buffer state (checkpointing): the append frontier
     * plus every still-live entry in logical-position order.
     *
     * @param save_entry  (Writer &, const T &) serializer.
     */
    template <typename Writer, typename SaveFn>
    void
    saveState(Writer &w, SaveFn &&save_entry) const
    {
        w.u64(storage_.size());
        w.u64(next_);
        for (Position p = oldest(); p < next_; ++p)
            save_entry(
                w, storage_[static_cast<std::size_t>(p %
                                                     storage_.size())]);
    }

    /**
     * Restore state written by saveState into a buffer of identical
     * capacity (fails the reader otherwise). Overwritten positions
     * are unobservable, so only live entries are restored.
     *
     * @param load_entry  (Reader &, T &) deserializer.
     */
    template <typename Reader, typename LoadFn>
    void
    loadState(Reader &r, LoadFn &&load_entry)
    {
        if (r.u64() != storage_.size()) {
            r.fail();
            return;
        }
        next_ = r.u64();
        for (T &e : storage_)
            e = T{};
        for (Position p = oldest(); p < next_ && r.ok(); ++p)
            load_entry(
                r, storage_[static_cast<std::size_t>(p %
                                                     storage_.size())]);
    }

  private:
    std::vector<T> storage_;
    Position next_ = 0;
};

/**
 * Flat FIFO ring — a drop-in replacement for the std::deque pending
 * queues in the stream engines.
 *
 * Same head/tail position discipline as CircularBuffer, but bounded
 * consumption instead of overwrite: push_back grows the storage
 * (power-of-two doubling) when full, pop_front/popFront consumes from
 * the head, and clear() empties the queue while RETAINING capacity.
 * A stream queue that is reset and reallocated thousands of times per
 * run therefore reaches a steady state where no operation allocates —
 * unlike std::deque, which frees its map blocks on destruction and
 * re-buys them on the next stream start.
 *
 * Invariants: head_ <= tail_; live elements are the logical positions
 * [head_, tail_); storage index = position & (capacity - 1) with
 * capacity a power of two. Indexing (operator[]) is relative to the
 * head, matching deque semantics.
 *
 * @tparam T  element type; must be copyable.
 */
template <typename T>
class RingQueue
{
  public:
    RingQueue() = default;

    bool empty() const { return head_ == tail_; }
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }

    /** Append to the tail, growing storage when full. */
    void
    push_back(const T &v)
    {
        if (size() == storage_.size())
            grow();
        storage_[static_cast<std::size_t>(tail_ & mask_)] = v;
        ++tail_;
    }

    /** Head element; queue must be non-empty. */
    const T &
    front() const
    {
        assert(!empty());
        return storage_[static_cast<std::size_t>(head_ & mask_)];
    }

    /** Drop the head element; queue must be non-empty. */
    void
    pop_front()
    {
        assert(!empty());
        ++head_;
    }

    /** i-th element from the head (deque-style indexing). */
    const T &
    operator[](std::size_t i) const
    {
        assert(i < size());
        return storage_[static_cast<std::size_t>((head_ + i) & mask_)];
    }

    /** Drop the first n elements (resync prefix consumption). */
    void
    dropFront(std::size_t n)
    {
        assert(n <= size());
        head_ += n;
    }

    /** Empty the queue; storage capacity is retained. */
    void
    clear()
    {
        head_ = 0;
        tail_ = 0;
    }

    /** Replace the contents with a [first, last) range. */
    template <typename It>
    void
    assign(It first, It last)
    {
        clear();
        for (; first != last; ++first)
            push_back(*first);
    }

    /** Pre-size the storage for at least n elements. */
    void
    reserve(std::size_t n)
    {
        while (storage_.size() < n)
            grow();
    }

    /** Current storage size (tests/diagnostics). */
    std::size_t capacity() const { return storage_.size(); }

  private:
    void
    grow()
    {
        std::size_t new_cap =
            storage_.empty() ? kInitialCapacity : storage_.size() * 2;
        std::vector<T> next(new_cap);
        std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            next[i] = (*this)[i];
        storage_ = std::move(next);
        mask_ = new_cap - 1;
        head_ = 0;
        tail_ = n;
    }

    static constexpr std::size_t kInitialCapacity = 16;

    std::vector<T> storage_;
    std::uint64_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace stems

#endif // STEMS_COMMON_CIRCULAR_BUFFER_HH
