#include "common/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace stems {

namespace {

/** Sentinel cell content marking a separator row. */
const std::string kSeparator = "\x01--";

} // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row arity mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.push_back({kSeparator});
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparator)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| ";
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
            os << ' ';
        }
        os << "|\n";
    };

    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == kSeparator)
            print_sep();
        else
            print_row(row);
    }
    print_sep();
}

std::string
Table::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace stems
