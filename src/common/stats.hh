/**
 * @file
 * Small statistics toolkit: counters, signed-bucket histograms and
 * formatting helpers used by the analysis modules and the benchmark
 * harnesses.
 */

#ifndef STEMS_COMMON_STATS_HH
#define STEMS_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace stems {

/** Safe ratio: returns 0 when the denominator is 0. */
double ratio(std::uint64_t num, std::uint64_t den);

/** Format a fraction as a percentage string, e.g. "62.1%". */
std::string fmtPct(double fraction, int decimals = 1);

/** Format a double with a fixed number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a speedup multiplier, e.g. "1.31x". */
std::string fmtX(double v, int decimals = 2);

/**
 * Histogram over signed integer buckets.
 *
 * Used for correlation-distance distributions (paper Figure 8) and
 * reconstruction-displacement statistics (paper Section 4.3).
 */
class Histogram
{
  public:
    /** Record one sample of the given bucket value. */
    void add(std::int64_t bucket, std::uint64_t count = 1);

    /** Samples recorded in one bucket. */
    std::uint64_t count(std::int64_t bucket) const;

    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in [lo, hi] (inclusive). */
    double fractionBetween(std::int64_t lo, std::int64_t hi) const;

    /** Fraction of samples with |bucket| <= window. */
    double fractionWithin(std::int64_t window) const;

    /** Mean bucket value. */
    double mean() const;

    /** Smallest recorded bucket (0 when empty). */
    std::int64_t minBucket() const;

    /** Largest recorded bucket (0 when empty). */
    std::int64_t maxBucket() const;

    /** Read-only access to the underlying buckets. */
    const std::map<std::int64_t, std::uint64_t> &
    buckets() const
    {
        return buckets_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::int64_t weightedSum_ = 0;
};

} // namespace stems

#endif // STEMS_COMMON_STATS_HH
