/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print
 * figure/table rows in the same layout as the paper's plots.
 */

#ifndef STEMS_COMMON_TABLE_HH
#define STEMS_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace stems {

/**
 * A simple left-aligned-first-column, right-aligned-rest ASCII table.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace stems

#endif // STEMS_COMMON_TABLE_HH
