/**
 * @file
 * Minimal JSON reader/writer helpers shared by every machine-readable
 * artifact this repo emits: bench `--json` results and performance
 * snapshots (analysis/report), metrics snapshots and run manifests
 * (obs/), and the tests that parse those files back.
 *
 * One parser and one set of emit conventions (stable key order
 * decided by the callers, `%.17g` doubles that round-trip exactly,
 * exact u64 integer tokens) keep the writers and readers from ever
 * drifting apart. The parser handles just the JSON subset those
 * writers produce — objects, arrays, strings with the common escapes,
 * numbers, booleans, null — and reports the first error instead of
 * guessing.
 */

#ifndef STEMS_COMMON_MINI_JSON_HH
#define STEMS_COMMON_MINI_JSON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace stems {

/** JSON string contents -> source text (quotes not included). */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Full-precision double that round-trips through a JSON parser. */
inline std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Minimal JSON value: just what this repo's artifact files use. */
struct JsonValue
{
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::uint64_t integer = 0; ///< exact value of integer tokens
    bool isInteger = false;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    get(const char *key) const
    {
        for (const auto &kv : members)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    double
    num(const char *key, double fallback = 0.0) const
    {
        const JsonValue *v = get(key);
        return v && v->kind == Kind::kNumber ? v->number : fallback;
    }

    std::uint64_t
    uint(const char *key) const
    {
        const JsonValue *v = get(key);
        if (!v || v->kind != Kind::kNumber)
            return 0;
        return v->isInteger
                   ? v->integer
                   : static_cast<std::uint64_t>(v->number);
    }

    std::string
    str(const char *key) const
    {
        const JsonValue *v = get(key);
        return v && v->kind == Kind::kString ? v->text
                                             : std::string();
    }
};

struct JsonParser
{
    const char *p;
    const char *end;
    std::string error;

    explicit JsonParser(const std::string &text)
        : p(text.data()), end(text.data() + text.size())
    {
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end - p) < n ||
            std::strncmp(p, word, n) != 0)
            return fail(std::string("expected '") + word + "'");
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return fail("bad escape");
            char e = *p++;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (end - p < 4)
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                // The writers only escape ASCII control characters;
                // encode anything else as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return fail("bad escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case '{': {
            out.kind = JsonValue::Kind::kObject;
            ++p;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                JsonValue value;
                if (!parseValue(value))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(value));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            out.kind = JsonValue::Kind::kArray;
            ++p;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '"':
            out.kind = JsonValue::Kind::kString;
            return parseString(out.text);
        case 't':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::kNull;
            return literal("null");
        default: {
            const char *start = p;
            if (p < end && (*p == '-' || *p == '+'))
                ++p;
            bool integral = true;
            while (p < end &&
                   ((*p >= '0' && *p <= '9') || *p == '.' ||
                    *p == 'e' || *p == 'E' || *p == '+' ||
                    *p == '-')) {
                if (*p == '.' || *p == 'e' || *p == 'E')
                    integral = false;
                ++p;
            }
            if (p == start)
                return fail("unexpected character");
            std::string token(start, p);
            out.kind = JsonValue::Kind::kNumber;
            out.number = std::strtod(token.c_str(), nullptr);
            if (integral && token[0] != '-') {
                // Keep integer tokens exact: counts can exceed a
                // double's 53-bit mantissa.
                out.integer =
                    std::strtoull(token.c_str(), nullptr, 10);
                out.isInteger = true;
            }
            return true;
        }
        }
    }
};

} // namespace stems

#endif // STEMS_COMMON_MINI_JSON_HH
