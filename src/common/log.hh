/**
 * @file
 * Minimal error-reporting helpers, following the gem5 fatal/panic
 * distinction: fatal() for user/configuration errors, panic() for
 * internal invariant violations.
 */

#ifndef STEMS_COMMON_LOG_HH
#define STEMS_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace stems {

/** Abort on an internal invariant violation (a bug in this library). */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit on a user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace stems

#endif // STEMS_COMMON_LOG_HH
