/**
 * @file
 * Error-reporting and leveled-logging helpers.
 *
 * The fatal/panic split follows gem5: fatal() for user/configuration
 * errors, panic() for internal invariant violations. Both always
 * print, regardless of the log level.
 *
 * Everything else goes through the leveled logger: error/warn/info/
 * debug lines on stderr, filtered by a process-wide threshold. The
 * threshold defaults to `info` (so the diagnostics lines benches have
 * always printed keep printing) and is controlled by the STEMS_LOG
 * environment variable — `error`, `warn`, `info` or `debug` (or the
 * numeric levels 0-3). Each message is formatted into one complete
 * line and written with a single locked fwrite, so concurrent worker
 * threads can log without interleaving fragments.
 *
 * Simulation results never depend on logging: all leveled output is
 * stderr-only, and sweep stdout/--json artifacts are pinned bitwise
 * identical with logging on or off.
 */

#ifndef STEMS_COMMON_LOG_HH
#define STEMS_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace stems {

/** Severity of a log line, most severe first. */
enum class LogLevel
{
    kError = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
};

namespace log_detail {

inline std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Threshold cell; -1 = not yet initialized from STEMS_LOG. */
inline std::atomic<int> &
logThresholdCell()
{
    static std::atomic<int> cell{-1};
    return cell;
}

} // namespace log_detail

/** Parse a STEMS_LOG value (level name or numeric code 0-3).
 *  @return false on an unknown value; `out` is left untouched. */
inline bool
parseLogLevel(const char *text, LogLevel &out)
{
    if (!text)
        return false;
    if (!std::strcmp(text, "error") || !std::strcmp(text, "0")) {
        out = LogLevel::kError;
    } else if (!std::strcmp(text, "warn") || !std::strcmp(text, "1")) {
        out = LogLevel::kWarn;
    } else if (!std::strcmp(text, "info") || !std::strcmp(text, "2")) {
        out = LogLevel::kInfo;
    } else if (!std::strcmp(text, "debug") ||
               !std::strcmp(text, "3")) {
        out = LogLevel::kDebug;
    } else {
        return false;
    }
    return true;
}

/** Override the threshold programmatically (tests, tools). */
inline void
setLogThreshold(LogLevel level)
{
    log_detail::logThresholdCell().store(static_cast<int>(level));
}

/** The active threshold: STEMS_LOG on first use, default `info`.
 *  An unparseable STEMS_LOG falls back to the default and says so
 *  once (at warn, which the default threshold shows). */
inline LogLevel
logThreshold()
{
    int cached = log_detail::logThresholdCell().load();
    if (cached >= 0)
        return static_cast<LogLevel>(cached);
    LogLevel level = LogLevel::kInfo;
    const char *env = std::getenv("STEMS_LOG");
    bool bad = env && *env && !parseLogLevel(env, level);
    setLogThreshold(level);
    if (bad) {
        std::fprintf(stderr,
                     "warn: STEMS_LOG='%s' is not a log level "
                     "(error|warn|info|debug); using 'info'\n",
                     env);
    }
    return level;
}

/** Whether a line at `level` would be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(logThreshold());
}

/** Emit one complete line ("<level>: <msg>\n") to stderr with a
 *  single locked write; dropped when below the threshold. */
inline void
logLine(LogLevel level, const std::string &msg)
{
    if (!logEnabled(level))
        return;
    static const char *const names[] = {"error", "warn", "info",
                                        "debug"};
    std::string line = names[static_cast<int>(level)];
    line += ": ";
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(log_detail::logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

inline void
logError(const std::string &msg)
{
    logLine(LogLevel::kError, msg);
}

inline void
logWarn(const std::string &msg)
{
    logLine(LogLevel::kWarn, msg);
}

inline void
logInfo(const std::string &msg)
{
    logLine(LogLevel::kInfo, msg);
}

inline void
logDebug(const std::string &msg)
{
    logLine(LogLevel::kDebug, msg);
}

/** Abort on an internal invariant violation (a bug in this library).
 *  Always prints, regardless of the log threshold. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit on a user/configuration error. Always prints. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Non-fatal warning to stderr (historical shorthand for logWarn). */
inline void
warn(const std::string &msg)
{
    logWarn(msg);
}

} // namespace stems

#endif // STEMS_COMMON_LOG_HH
