/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) used to
 * integrity-check on-disk trace and store files.
 */

#ifndef STEMS_COMMON_CRC32_HH
#define STEMS_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace stems {

/**
 * Incrementally extend a CRC-32 over a byte range.
 *
 * @param crc   running checksum; pass 0 for the first chunk.
 * @param data  bytes to fold in.
 * @param len   number of bytes.
 * @return the updated checksum; feed it back in for the next chunk.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/** One-shot CRC-32 of a byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace stems

#endif // STEMS_COMMON_CRC32_HH
