/**
 * @file
 * Binary trace file I/O.
 *
 * Two on-disk encodings share the 8-byte magic "STeMStrc":
 *
 *  - v1: fixed 29-byte packed records, followed by a CRC-32 footer
 *    over the record bytes. Simple and seekable.
 *  - v2: delta/varint compressed records with the CRC in the header
 *    (see trace/trace_codec.hh). 3-6x smaller than v1 on the paper
 *    workloads and replayable zero-copy via MmapTraceSource. The
 *    TraceStore persists traces in this encoding.
 *
 * Both are integrity-checked: readTraceFile rejects truncated files,
 * trailing garbage, and payload corruption, and never returns a
 * partial trace as success. readTraceFile detects the version
 * automatically.
 */

#ifndef STEMS_TRACE_TRACE_IO_HH
#define STEMS_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace stems {

/**
 * Write a trace to a binary file in the v1 (fixed-record) encoding.
 *
 * @return true on success.
 */
bool writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Write a trace in the compact v2 encoding.
 *
 * @return true on success.
 */
bool writeTraceFileV2(const std::string &path, const Trace &trace);

/**
 * Read a trace from a binary file (v1 or v2, auto-detected).
 *
 * @param path  file to read.
 * @param out   receives the records; cleared first. Left in an
 *              unspecified state on failure.
 * @return true on success (magic/version/CRC/length all valid).
 */
bool readTraceFile(const std::string &path, Trace &out);

/**
 * Serialize a trace to the v2 byte representation (header +
 * compressed payload), e.g. for hashing or embedding.
 */
std::vector<std::uint8_t> encodeTraceV2(const Trace &trace);

/**
 * Content digest of a trace: a 64-bit FNV-1a hash over every field
 * of every record in order. Two traces share a digest iff (modulo
 * hash collisions) they are record-for-record identical; the
 * TraceStore keys baseline results by it.
 */
std::uint64_t traceDigest(const Trace &trace);

/**
 * Content digests of several prefixes of one trace, computed in a
 * single pass over the records.
 *
 * @param indices  prefix lengths, ascending, each <= trace.size().
 * @return one digest per index, in order.
 *
 * Unlike traceDigest — which folds the record count in *first* —
 * the prefix digest folds its length in last, so all prefixes share
 * one incremental hash state. Prefix digests are therefore a
 * distinct keyspace from traceDigest values; the checkpoint store
 * keys (store/trace_store.hh) use only prefix digests.
 */
std::vector<std::uint64_t>
tracePrefixDigests(const Trace &trace,
                   const std::vector<std::size_t> &indices);

} // namespace stems

#endif // STEMS_TRACE_TRACE_IO_HH
