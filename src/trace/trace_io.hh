/**
 * @file
 * Binary trace file I/O.
 *
 * A small fixed-layout format so traces can be generated once and
 * replayed by tools/benchmarks: little-endian, 8-byte magic, version,
 * record count, then packed records.
 */

#ifndef STEMS_TRACE_TRACE_IO_HH
#define STEMS_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace stems {

/**
 * Write a trace to a binary file.
 *
 * @return true on success.
 */
bool writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Read a trace from a binary file.
 *
 * @param path  file to read.
 * @param out   receives the records.
 * @return true on success (format/magic/version all valid).
 */
bool readTraceFile(const std::string &path, Trace &out);

} // namespace stems

#endif // STEMS_TRACE_TRACE_IO_HH
