/**
 * @file
 * TraceSource: a sequential reader of MemRecords that decouples
 * consumers (the prefetch simulator, the analyses, the tools) from
 * where the records live. Two implementations:
 *
 *  - VectorTraceSource walks an in-memory Trace (owned or borrowed);
 *  - MmapTraceSource replays a v2 trace file straight out of the
 *    page cache: the file is mapped read-only and records are decoded
 *    incrementally from the mapped bytes, so replay never
 *    materializes the whole record vector.
 */

#ifndef STEMS_TRACE_TRACE_SOURCE_HH
#define STEMS_TRACE_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "trace/trace.hh"
#include "trace/trace_codec.hh"

namespace stems {

/** Sequential, resettable stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Total number of records the source yields. */
    virtual std::size_t size() const = 0;

    /** Rewind to the first record. */
    virtual void reset() = 0;

    /**
     * Produce the next record.
     *
     * @return false at end of stream (out is untouched).
     */
    virtual bool next(MemRecord &out) = 0;

    /** Materialize all remaining records (after a reset: the whole
     *  trace) into a vector. */
    void readAll(Trace &out);
};

/** TraceSource over an in-memory Trace. */
class VectorTraceSource : public TraceSource
{
  public:
    /** Borrow a trace owned by the caller (must outlive the source). */
    explicit VectorTraceSource(const Trace &trace) : trace_(&trace) {}

    /** Take ownership of a trace. */
    explicit VectorTraceSource(Trace &&trace)
        : owned_(std::move(trace)), trace_(&owned_)
    {
    }

    std::size_t size() const override { return trace_->size(); }
    void reset() override { pos_ = 0; }

    bool
    next(MemRecord &out) override
    {
        if (pos_ >= trace_->size())
            return false;
        out = (*trace_)[pos_++];
        return true;
    }

  private:
    Trace owned_;
    const Trace *trace_;
    std::size_t pos_ = 0;
};

/**
 * Zero-copy replay of a v2 trace file through mmap.
 *
 * open() maps the file, validates the header and the payload CRC
 * once, and the source then decodes records on demand from the
 * mapped bytes. Falls back to a private heap buffer when mmap is
 * unavailable.
 */
class MmapTraceSource : public TraceSource
{
  public:
    /**
     * Open a v2 trace file.
     *
     * @return null when the file is missing, not a v2 trace, or
     *         fails the CRC/size checks.
     */
    static std::unique_ptr<MmapTraceSource>
    open(const std::string &path);

    ~MmapTraceSource() override;

    MmapTraceSource(const MmapTraceSource &) = delete;
    MmapTraceSource &operator=(const MmapTraceSource &) = delete;

    std::size_t size() const override { return count_; }
    void reset() override;
    bool next(MemRecord &out) override;

    /** True when the payload is an actual mmap (not the fallback). */
    bool mapped() const { return mapped_; }

  private:
    MmapTraceSource() = default;

    const std::uint8_t *base_ = nullptr; ///< mapping (or buffer) start
    std::size_t mapBytes_ = 0;           ///< mapping length
    bool mapped_ = false;
    const std::uint8_t *payload_ = nullptr;
    const std::uint8_t *payloadEnd_ = nullptr;
    std::size_t count_ = 0;

    const std::uint8_t *cursor_ = nullptr;
    std::size_t produced_ = 0;
    codec::DeltaState state_;
};

/**
 * Open any trace file as a source: v2 files get the mmap replay
 * path, v1 files are read into memory. @return null on any error.
 */
std::unique_ptr<TraceSource>
openTraceSource(const std::string &path);

} // namespace stems

#endif // STEMS_TRACE_TRACE_SOURCE_HH
