#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

namespace stems {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'e', 'M', 'S', 't', 'r', 'c'};
constexpr std::uint32_t kVersion = 1;

/** Packed on-disk record layout (29 bytes, no padding). */
struct PackedRecord
{
    std::uint64_t vaddr;
    std::uint64_t pc;
    std::uint32_t cpuOps;
    std::uint32_t depDist;
    std::uint8_t kind;
} __attribute__((packed));

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTraceFile(const std::string &path, const Trace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::uint64_t count = trace.size();
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
        std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        return false;
    }
    for (const MemRecord &r : trace) {
        PackedRecord p;
        p.vaddr = r.vaddr;
        p.pc = r.pc;
        p.cpuOps = r.cpuOps;
        p.depDist = r.depDist;
        p.kind = static_cast<std::uint8_t>(r.kind);
        if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
readTraceFile(const std::string &path, Trace &out)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[8];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
        version != kVersion ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1) {
        return false;
    }
    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        if (std::fread(&p, sizeof(p), 1, f.get()) != 1)
            return false;
        if (p.kind > 2)
            return false;
        MemRecord r;
        r.vaddr = p.vaddr;
        r.pc = p.pc;
        r.cpuOps = p.cpuOps;
        r.depDist = p.depDist;
        r.kind = static_cast<AccessKind>(p.kind);
        out.push_back(r);
    }
    return true;
}

} // namespace stems
