#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/crc32.hh"
#include "trace/trace_codec.hh"

namespace stems {

namespace {

constexpr std::uint32_t kVersion1 = 1;
constexpr std::uint32_t kVersion2 = 2;

/** Packed v1 on-disk record layout (29 bytes, no padding). */
struct PackedRecord
{
    std::uint64_t vaddr;
    std::uint64_t pc;
    std::uint32_t cpuOps;
    std::uint32_t depDist;
    std::uint8_t kind;
} __attribute__((packed));

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** True when the stream is exactly at end of file. */
bool
atEof(std::FILE *f)
{
    return std::fgetc(f) == EOF && !std::ferror(f);
}

/** Bytes remaining from the current position to end of file. */
std::uint64_t
remainingBytes(std::FILE *f)
{
    long here = std::ftell(f);
    std::fseek(f, 0, SEEK_END);
    long end = std::ftell(f);
    std::fseek(f, here, SEEK_SET);
    return here >= 0 && end >= here
               ? static_cast<std::uint64_t>(end - here)
               : 0;
}

bool
readV1Body(std::FILE *f, std::uint64_t count, Trace &out)
{
    // Validate the (unchecksummed) count field against the actual
    // file length before reserving anything: a corrupt count must
    // fail cleanly, not abort on allocation.
    std::uint64_t remaining = remainingBytes(f);
    if (remaining < sizeof(std::uint32_t) ||
        count != (remaining - sizeof(std::uint32_t)) /
                     sizeof(PackedRecord) ||
        count * sizeof(PackedRecord) + sizeof(std::uint32_t) !=
            remaining) {
        return false;
    }
    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    std::uint32_t crc = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        if (std::fread(&p, sizeof(p), 1, f) != 1)
            return false; // truncated
        crc = crc32Update(crc, &p, sizeof(p));
        if (p.kind > 2)
            return false;
        MemRecord r;
        r.vaddr = p.vaddr;
        r.pc = p.pc;
        r.cpuOps = p.cpuOps;
        r.depDist = p.depDist;
        r.kind = static_cast<AccessKind>(p.kind);
        out.push_back(r);
    }
    std::uint32_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f) != 1)
        return false; // missing footer: truncated at a record boundary
    return stored == crc && atEof(f);
}

bool
readV2Body(std::FILE *f, std::uint64_t count, Trace &out)
{
    std::uint64_t payload_len = 0;
    std::uint32_t crc = 0;
    if (std::fread(&payload_len, sizeof(payload_len), 1, f) != 1 ||
        std::fread(&crc, sizeof(crc), 1, f) != 1) {
        return false;
    }
    // Validate both unchecksummed header fields against the file
    // length before allocating (each record encodes to >= 2 bytes).
    if (payload_len != remainingBytes(f) || count > payload_len ||
        (count > 0 && count > payload_len / 2)) {
        return false;
    }
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(payload_len));
    if (payload_len > 0 &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size()) {
        return false; // truncated
    }
    if (!atEof(f) || crc32(payload.data(), payload.size()) != crc)
        return false;

    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    const std::uint8_t *cursor = payload.data();
    const std::uint8_t *end = cursor + payload.size();
    codec::DeltaState state;
    for (std::uint64_t i = 0; i < count; ++i) {
        MemRecord r;
        if (!codec::decodeRecord(cursor, end, r, state))
            return false;
        out.push_back(r);
    }
    return cursor == end; // payload must hold exactly `count` records
}

} // namespace

bool
writeTraceFile(const std::string &path, const Trace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    std::uint64_t count = trace.size();
    if (std::fwrite(codec::kTraceMagic, sizeof(codec::kTraceMagic), 1,
                    f.get()) != 1 ||
        std::fwrite(&kVersion1, sizeof(kVersion1), 1, f.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        return false;
    }
    std::uint32_t crc = 0;
    for (const MemRecord &r : trace) {
        PackedRecord p;
        p.vaddr = r.vaddr;
        p.pc = r.pc;
        p.cpuOps = r.cpuOps;
        p.depDist = r.depDist;
        p.kind = static_cast<std::uint8_t>(r.kind);
        crc = crc32Update(crc, &p, sizeof(p));
        if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1)
            return false;
    }
    return std::fwrite(&crc, sizeof(crc), 1, f.get()) == 1;
}

std::vector<std::uint8_t>
encodeTraceV2(const Trace &trace)
{
    std::vector<std::uint8_t> payload;
    // ~3 bytes/record is typical; reserve to avoid regrowth churn.
    payload.reserve(trace.size() * 4);
    codec::DeltaState state;
    for (const MemRecord &r : trace)
        codec::encodeRecord(payload, r, state);

    std::vector<std::uint8_t> file(codec::kV2HeaderBytes +
                                   payload.size());
    std::memcpy(file.data(), codec::kTraceMagic,
                sizeof(codec::kTraceMagic));
    std::memcpy(file.data() + sizeof(codec::kTraceMagic), &kVersion2,
                sizeof(kVersion2));
    std::uint64_t count = trace.size();
    std::uint64_t payload_len = payload.size();
    std::uint32_t crc = crc32(payload.data(), payload.size());
    std::memcpy(file.data() + codec::kV2CountOffset, &count,
                sizeof(count));
    std::memcpy(file.data() + codec::kV2PayloadLenOffset,
                &payload_len, sizeof(payload_len));
    std::memcpy(file.data() + codec::kV2CrcOffset, &crc, sizeof(crc));
    std::memcpy(file.data() + codec::kV2HeaderBytes, payload.data(),
                payload.size());
    return file;
}

bool
writeTraceFileV2(const std::string &path, const Trace &trace)
{
    std::vector<std::uint8_t> bytes = encodeTraceV2(trace);
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    return std::fwrite(bytes.data(), 1, bytes.size(), f.get()) ==
           bytes.size();
}

bool
readTraceFile(const std::string &path, Trace &out)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    char magic[8];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
        std::memcmp(magic, codec::kTraceMagic, sizeof(magic)) != 0 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1) {
        return false;
    }
    if (version == kVersion1)
        return readV1Body(f.get(), count, out);
    if (version == kVersion2)
        return readV2Body(f.get(), count, out);
    return false;
}

std::uint64_t
traceDigest(const Trace &trace)
{
    // 64-bit FNV-1a over a canonical little-endian field serialization.
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const void *data, std::size_t len) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    std::uint64_t count = trace.size();
    mix(&count, sizeof(count));
    for (const MemRecord &r : trace) {
        mix(&r.vaddr, sizeof(r.vaddr));
        mix(&r.pc, sizeof(r.pc));
        mix(&r.cpuOps, sizeof(r.cpuOps));
        mix(&r.depDist, sizeof(r.depDist));
        std::uint8_t kind = static_cast<std::uint8_t>(r.kind);
        mix(&kind, sizeof(kind));
    }
    return h;
}

std::vector<std::uint64_t>
tracePrefixDigests(const Trace &trace,
                   const std::vector<std::size_t> &indices)
{
    // Same canonical field serialization as traceDigest, but the
    // running state is shared by all prefixes and each prefix's
    // length is folded in at its snapshot point (see the header).
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [](std::uint64_t state, const void *data,
                  std::size_t len) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state ^= p[i];
            state *= 1099511628211ull;
        }
        return state;
    };

    std::vector<std::uint64_t> digests;
    digests.reserve(indices.size());
    std::size_t record = 0;
    for (std::size_t index : indices) {
        for (; record < index && record < trace.size(); ++record) {
            const MemRecord &r = trace[record];
            h = mix(h, &r.vaddr, sizeof(r.vaddr));
            h = mix(h, &r.pc, sizeof(r.pc));
            h = mix(h, &r.cpuOps, sizeof(r.cpuOps));
            h = mix(h, &r.depDist, sizeof(r.depDist));
            std::uint8_t kind = static_cast<std::uint8_t>(r.kind);
            h = mix(h, &kind, sizeof(kind));
        }
        std::uint64_t count = index;
        digests.push_back(mix(h, &count, sizeof(count)));
    }
    return digests;
}

} // namespace stems
