#include "trace/trace.hh"

#include <unordered_set>

namespace stems {

TraceSummary
summarize(const Trace &trace)
{
    TraceSummary s;
    s.records = trace.size();
    std::unordered_set<Addr> blocks;
    std::unordered_set<Addr> regions;
    for (const MemRecord &r : trace) {
        switch (r.kind) {
          case AccessKind::kRead:
            ++s.reads;
            if (r.depDist > 0)
                ++s.dependentReads;
            break;
          case AccessKind::kWrite:
            ++s.writes;
            break;
          case AccessKind::kInvalidate:
            ++s.invalidates;
            break;
        }
        if (!r.isInvalidate()) {
            blocks.insert(blockNumber(r.vaddr));
            regions.insert(regionNumber(r.vaddr));
        }
        s.cpuOps += r.cpuOps;
    }
    s.distinctBlocks = blocks.size();
    s.distinctRegions = regions.size();
    return s;
}

} // namespace stems
