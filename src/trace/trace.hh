/**
 * @file
 * In-memory access trace plus a builder with dependence bookkeeping.
 */

#ifndef STEMS_TRACE_TRACE_HH
#define STEMS_TRACE_TRACE_HH

#include <cstddef>
#include <vector>

#include "trace/record.hh"

namespace stems {

/** A memory-access trace is an ordered sequence of records. */
using Trace = std::vector<MemRecord>;

/** Aggregate counts over a trace. */
struct TraceSummary
{
    std::size_t records = 0;
    std::size_t reads = 0;
    std::size_t writes = 0;
    std::size_t invalidates = 0;
    std::size_t dependentReads = 0;
    std::size_t distinctBlocks = 0;
    std::size_t distinctRegions = 0;
    std::uint64_t cpuOps = 0;
};

/** Compute aggregate statistics for a trace. */
TraceSummary summarize(const Trace &trace);

/**
 * Incremental trace construction with dependence tracking.
 *
 * The builder keeps the index of the most recent read so that workload
 * generators can express "this load's address came from the previous
 * load" without manual index arithmetic.
 */
class TraceBuilder
{
  public:
    /** Append a load. @param dep_on_prev_read chain to the last read. */
    void
    read(Addr a, Pc pc, std::uint32_t cpu_ops = 0,
         bool dep_on_prev_read = false)
    {
        MemRecord r;
        r.vaddr = a;
        r.pc = pc;
        r.cpuOps = cpu_ops;
        r.kind = AccessKind::kRead;
        if (dep_on_prev_read && lastRead_ >= 0) {
            r.depDist = static_cast<std::uint32_t>(
                trace_.size() - static_cast<std::size_t>(lastRead_));
        }
        lastRead_ = static_cast<std::ptrdiff_t>(trace_.size());
        trace_.push_back(r);
    }

    /** Append a store. */
    void
    write(Addr a, Pc pc, std::uint32_t cpu_ops = 0)
    {
        MemRecord r;
        r.vaddr = a;
        r.pc = pc;
        r.cpuOps = cpu_ops;
        r.kind = AccessKind::kWrite;
        trace_.push_back(r);
    }

    /** Append a remote invalidation of a block. */
    void
    invalidate(Addr a)
    {
        MemRecord r;
        r.vaddr = a;
        r.kind = AccessKind::kInvalidate;
        trace_.push_back(r);
    }

    /**
     * Append a load whose address was produced by an earlier record
     * (e.g., a gather depending on its index load, not on the
     * previous gather).
     *
     * @param producer_index  index of the producing record, as
     *                        returned by size() before it was added.
     */
    void
    readWithProducer(Addr a, Pc pc, std::uint32_t cpu_ops,
                     std::size_t producer_index)
    {
        MemRecord r;
        r.vaddr = a;
        r.pc = pc;
        r.cpuOps = cpu_ops;
        r.kind = AccessKind::kRead;
        if (producer_index < trace_.size()) {
            r.depDist = static_cast<std::uint32_t>(trace_.size() -
                                                   producer_index);
        }
        lastRead_ = static_cast<std::ptrdiff_t>(trace_.size());
        trace_.push_back(r);
    }

    /** Forget the dependence chain (e.g., at a transaction boundary). */
    void breakChain() { lastRead_ = -1; }

    /** Number of records so far. */
    std::size_t size() const { return trace_.size(); }

    /** Move the finished trace out of the builder. */
    Trace take() { return std::move(trace_); }

    /** Read-only view of the records built so far. */
    const Trace &records() const { return trace_; }

  private:
    Trace trace_;
    std::ptrdiff_t lastRead_ = -1;
};

} // namespace stems

#endif // STEMS_TRACE_TRACE_HH
