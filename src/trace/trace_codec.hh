/**
 * @file
 * The compact v2 trace record codec shared by the file reader/writer
 * (trace/trace_io.cc) and the zero-copy mmap replay source
 * (trace/trace_source.cc).
 *
 * v2 file layout (little-endian):
 *
 *   offset  0  8-byte magic "STeMStrc" (same as v1)
 *   offset  8  u32 version = 2
 *   offset 12  u64 record count
 *   offset 20  u64 payload byte length
 *   offset 28  u32 CRC-32 of the payload bytes
 *   offset 32  payload: one variable-length encoded record after
 *              another, no padding
 *
 * Each record starts with a tag byte
 *
 *   bits 0-1  AccessKind
 *   bit  2    PC identical to the previous record's PC (no PC field)
 *   bit  3    cpuOps field present (omitted when 0)
 *   bit  4    depDist field present (omitted when 0)
 *   bits 5-7  reserved, must be 0
 *
 * followed by LEB128 varints: zigzag(vaddr - prev vaddr) always, then
 * zigzag(pc - prev pc) unless bit 2, then cpuOps if bit 3, then
 * depDist if bit 4. Deltas start from vaddr = pc = 0. Addresses in a
 * trace are strongly local, so deltas shrink the dominant field from
 * 8 bytes to 1-3; repeated-PC runs drop the PC entirely. The encoding
 * is exact for every field — round trips are bitwise lossless.
 */

#ifndef STEMS_TRACE_TRACE_CODEC_HH
#define STEMS_TRACE_TRACE_CODEC_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace stems {
namespace codec {

/** Shared 8-byte magic of the binary trace formats. */
inline constexpr char kTraceMagic[8] = {'S', 'T', 'e', 'M',
                                        'S', 't', 'r', 'c'};

/** v2 header layout constants. */
inline constexpr std::size_t kV2HeaderBytes = 32;
inline constexpr std::size_t kV2CountOffset = 12;
inline constexpr std::size_t kV2PayloadLenOffset = 20;
inline constexpr std::size_t kV2CrcOffset = 28;

/** Tag-byte layout. */
inline constexpr std::uint8_t kTagKindMask = 0x3;
inline constexpr std::uint8_t kTagSamePc = 0x4;
inline constexpr std::uint8_t kTagHasCpuOps = 0x8;
inline constexpr std::uint8_t kTagHasDep = 0x10;
inline constexpr std::uint8_t kTagReservedMask = 0xE0;

inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

inline void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one varint from [*cursor, end).
 *
 * @return false on truncation or a varint longer than 64 bits; the
 *         cursor position is unspecified on failure.
 */
inline bool
readVarint(const std::uint8_t *&cursor, const std::uint8_t *end,
           std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (cursor < end) {
        std::uint8_t byte = *cursor++;
        if (shift == 63 && (byte & ~1u) != 0)
            return false; // would overflow 64 bits
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            out = v;
            return true;
        }
        shift += 7;
        if (shift > 63)
            return false;
    }
    return false;
}

/** Running previous-record state threaded through encode/decode. */
struct DeltaState
{
    std::uint64_t prevVaddr = 0;
    std::uint64_t prevPc = 0;
};

/** Append one record's encoding to `out`. */
inline void
encodeRecord(std::vector<std::uint8_t> &out, const MemRecord &r,
             DeltaState &state)
{
    std::uint8_t tag =
        static_cast<std::uint8_t>(r.kind) & kTagKindMask;
    if (r.pc == state.prevPc)
        tag |= kTagSamePc;
    if (r.cpuOps != 0)
        tag |= kTagHasCpuOps;
    if (r.depDist != 0)
        tag |= kTagHasDep;
    out.push_back(tag);
    appendVarint(out, zigzagEncode(static_cast<std::int64_t>(
                          r.vaddr - state.prevVaddr)));
    if ((tag & kTagSamePc) == 0)
        appendVarint(out, zigzagEncode(static_cast<std::int64_t>(
                              r.pc - state.prevPc)));
    if (tag & kTagHasCpuOps)
        appendVarint(out, r.cpuOps);
    if (tag & kTagHasDep)
        appendVarint(out, r.depDist);
    state.prevVaddr = r.vaddr;
    state.prevPc = r.pc;
}

/**
 * Decode one record from [*cursor, end).
 *
 * @return false on truncation, a reserved tag bit, or an invalid
 *         kind.
 */
inline bool
decodeRecord(const std::uint8_t *&cursor, const std::uint8_t *end,
             MemRecord &r, DeltaState &state)
{
    if (cursor >= end)
        return false;
    std::uint8_t tag = *cursor++;
    if ((tag & kTagReservedMask) != 0)
        return false;
    std::uint8_t kind = tag & kTagKindMask;
    if (kind > 2)
        return false;
    std::uint64_t v = 0;
    if (!readVarint(cursor, end, v))
        return false;
    r.vaddr = state.prevVaddr +
              static_cast<std::uint64_t>(zigzagDecode(v));
    if (tag & kTagSamePc) {
        r.pc = state.prevPc;
    } else {
        if (!readVarint(cursor, end, v))
            return false;
        r.pc = state.prevPc +
               static_cast<std::uint64_t>(zigzagDecode(v));
    }
    if (tag & kTagHasCpuOps) {
        if (!readVarint(cursor, end, v) || v > UINT32_MAX)
            return false;
        r.cpuOps = static_cast<std::uint32_t>(v);
    } else {
        r.cpuOps = 0;
    }
    if (tag & kTagHasDep) {
        if (!readVarint(cursor, end, v) || v > UINT32_MAX)
            return false;
        r.depDist = static_cast<std::uint32_t>(v);
    } else {
        r.depDist = 0;
    }
    r.kind = static_cast<AccessKind>(kind);
    state.prevVaddr = r.vaddr;
    state.prevPc = r.pc;
    return true;
}

} // namespace codec
} // namespace stems

#endif // STEMS_TRACE_TRACE_CODEC_HH
