/**
 * @file
 * External text/CSV trace ingestion (ChampSim-style access lists).
 *
 * The import format is line-oriented:
 *
 *   pc,addr,op[,cpuOps[,depDist]]
 *
 * with fields separated by commas and/or whitespace. `pc` and `addr`
 * accept hex (0x-prefixed) or decimal. `op` is R/W/I
 * (read/write/invalidate, case-insensitive) or the ChampSim is_write
 * convention 0/1. Blank lines and `#` comments are skipped. The
 * optional trailing fields carry the repo's timing annotations for
 * traces that round-trip through exportTextTrace.
 *
 * This is the bridge from traces we did not generate ourselves —
 * simulator dumps, hardware-counter logs, other repos' workloads —
 * into everything downstream: the binary formats, the TraceStore,
 * the driver, and the analyses.
 */

#ifndef STEMS_TRACE_TEXT_TRACE_HH
#define STEMS_TRACE_TEXT_TRACE_HH

#include <string>

#include "trace/trace.hh"

namespace stems {

/**
 * Parse a text access trace.
 *
 * @param path   file to read.
 * @param out    receives the records; cleared first.
 * @param error  when non-null, receives a "line N: ..." description
 *               of the first malformed line (or the I/O failure).
 * @return true when every line parsed.
 */
bool importTextTrace(const std::string &path, Trace &out,
                     std::string *error = nullptr);

/**
 * Write a trace in the canonical text form importTextTrace accepts:
 * `0xPC,0xADDR,OP[,cpuOps[,depDist]]`, omitting trailing zero
 * fields. import -> export -> import is exact.
 *
 * @return true on success.
 */
bool exportTextTrace(const std::string &path, const Trace &trace);

} // namespace stems

#endif // STEMS_TRACE_TEXT_TRACE_HH
