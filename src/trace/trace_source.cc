#include "trace/trace_source.hh"

#include <cstdio>
#include <cstring>
#include <new>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "trace/trace_io.hh"

namespace stems {

void
TraceSource::readAll(Trace &out)
{
    out.clear();
    out.reserve(size());
    MemRecord r;
    while (next(r))
        out.push_back(r);
}

namespace {

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

std::unique_ptr<MmapTraceSource>
MmapTraceSource::open(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(codec::kV2HeaderBytes)) {
        ::close(fd);
        return nullptr;
    }
    std::size_t file_bytes = static_cast<std::size_t>(st.st_size);

    std::unique_ptr<MmapTraceSource> src(new MmapTraceSource());
    void *map =
        ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        src->base_ = static_cast<const std::uint8_t *>(map);
        src->mapBytes_ = file_bytes;
        src->mapped_ = true;
    } else {
        // Fallback: read the file into a private buffer; the replay
        // interface is identical, only the paging behaviour differs.
        auto *buf = new (std::nothrow) std::uint8_t[file_bytes];
        if (buf == nullptr) {
            ::close(fd);
            return nullptr;
        }
        std::size_t got = 0;
        while (got < file_bytes) {
            ssize_t n = ::read(fd, buf + got, file_bytes - got);
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
        if (got != file_bytes) {
            delete[] buf;
            ::close(fd);
            return nullptr;
        }
        src->base_ = buf;
        src->mapBytes_ = file_bytes;
        src->mapped_ = false;
    }
    ::close(fd);

    // Header: magic, version 2, count, payload length, payload CRC.
    const std::uint8_t *h = src->base_;
    if (std::memcmp(h, codec::kTraceMagic,
                    sizeof(codec::kTraceMagic)) != 0 ||
        loadU32(h + sizeof(codec::kTraceMagic)) != 2) {
        return nullptr;
    }
    std::uint64_t count = loadU64(h + codec::kV2CountOffset);
    std::uint64_t payload_len =
        loadU64(h + codec::kV2PayloadLenOffset);
    std::uint32_t crc = loadU32(h + codec::kV2CrcOffset);
    if (codec::kV2HeaderBytes + payload_len != file_bytes)
        return nullptr; // truncated or trailing garbage
    if (count > payload_len || (count > 0 && count > payload_len / 2))
        return nullptr; // corrupt count (records are >= 2 bytes)
    const std::uint8_t *payload = h + codec::kV2HeaderBytes;
    if (crc32(payload, static_cast<std::size_t>(payload_len)) != crc)
        return nullptr;

    src->payload_ = payload;
    src->payloadEnd_ = payload + payload_len;
    src->count_ = static_cast<std::size_t>(count);
    src->reset();
    return src;
}

MmapTraceSource::~MmapTraceSource()
{
    if (base_ == nullptr)
        return;
    if (mapped_)
        ::munmap(const_cast<std::uint8_t *>(base_), mapBytes_);
    else
        delete[] base_;
}

void
MmapTraceSource::reset()
{
    cursor_ = payload_;
    produced_ = 0;
    state_ = codec::DeltaState{};
}

bool
MmapTraceSource::next(MemRecord &out)
{
    if (produced_ >= count_)
        return false;
    MemRecord r;
    if (!codec::decodeRecord(cursor_, payloadEnd_, r, state_))
        return false; // corrupt payload despite CRC: stop the stream
    out = r;
    ++produced_;
    return true;
}

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path)
{
    if (auto v2 = MmapTraceSource::open(path))
        return v2;
    Trace t;
    if (!readTraceFile(path, t))
        return nullptr;
    return std::make_unique<VectorTraceSource>(std::move(t));
}

} // namespace stems
