#include "trace/text_trace.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace stems {

namespace {

/** Split a line on commas/whitespace; '#' starts a comment. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : line) {
        if (c == '#')
            break;
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                fields.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        fields.push_back(cur);
    return fields;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    // Base 0: accepts 0x-prefixed hex and plain decimal.
    unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end == s.c_str() || *end != '\0' || s[0] == '-')
        return false;
    out = v;
    return true;
}

bool
parseOp(const std::string &s, AccessKind &kind)
{
    if (s.size() == 1) {
        switch (std::toupper(static_cast<unsigned char>(s[0]))) {
        case 'R':
        case '0': // ChampSim is_write = 0
            kind = AccessKind::kRead;
            return true;
        case 'W':
        case '1': // ChampSim is_write = 1
            kind = AccessKind::kWrite;
            return true;
        case 'I':
            kind = AccessKind::kInvalidate;
            return true;
        default:
            return false;
        }
    }
    return false;
}

void
setError(std::string *error, std::size_t line_no,
         const std::string &what)
{
    if (error) {
        *error =
            "line " + std::to_string(line_no) + ": " + what;
    }
}

} // namespace

bool
importTextTrace(const std::string &path, Trace &out,
                std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    out.clear();
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::vector<std::string> f = tokenize(line);
        if (f.empty())
            continue; // blank or comment-only line
        if (f.size() < 3 || f.size() > 5) {
            setError(error, line_no,
                     "expected pc,addr,op[,cpuOps[,depDist]], got " +
                         std::to_string(f.size()) + " fields");
            return false;
        }
        MemRecord r;
        std::uint64_t v = 0;
        if (!parseU64(f[0], v)) {
            setError(error, line_no, "bad pc '" + f[0] + "'");
            return false;
        }
        r.pc = v;
        if (!parseU64(f[1], v)) {
            setError(error, line_no, "bad addr '" + f[1] + "'");
            return false;
        }
        r.vaddr = v;
        if (!parseOp(f[2], r.kind)) {
            setError(error, line_no,
                     "bad op '" + f[2] + "' (want R/W/I or 0/1)");
            return false;
        }
        if (f.size() > 3) {
            if (!parseU64(f[3], v) || v > UINT32_MAX) {
                setError(error, line_no, "bad cpuOps '" + f[3] + "'");
                return false;
            }
            r.cpuOps = static_cast<std::uint32_t>(v);
        }
        if (f.size() > 4) {
            if (!parseU64(f[4], v) || v > UINT32_MAX) {
                setError(error, line_no,
                         "bad depDist '" + f[4] + "'");
                return false;
            }
            r.depDist = static_cast<std::uint32_t>(v);
        }
        out.push_back(r);
    }
    if (in.bad()) {
        if (error)
            *error = "I/O error reading " + path;
        return false;
    }
    return true;
}

bool
exportTextTrace(const std::string &path, const Trace &trace)
{
    std::ofstream outfile(path);
    if (!outfile)
        return false;
    outfile << "# pc,addr,op[,cpuOps[,depDist]] — " << trace.size()
            << " records\n";
    char buf[96];
    for (const MemRecord &r : trace) {
        char op = r.isRead() ? 'R' : r.isWrite() ? 'W' : 'I';
        int n = std::snprintf(
            buf, sizeof(buf), "0x%llx,0x%llx,%c",
            static_cast<unsigned long long>(r.pc),
            static_cast<unsigned long long>(r.vaddr), op);
        std::string lineout(buf, static_cast<std::size_t>(n));
        if (r.depDist != 0) {
            std::snprintf(buf, sizeof(buf), ",%u,%u", r.cpuOps,
                          r.depDist);
            lineout += buf;
        } else if (r.cpuOps != 0) {
            std::snprintf(buf, sizeof(buf), ",%u", r.cpuOps);
            lineout += buf;
        }
        outfile << lineout << '\n';
    }
    outfile.flush();
    return static_cast<bool>(outfile);
}

} // namespace stems
