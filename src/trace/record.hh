/**
 * @file
 * The memory-access trace record.
 *
 * The workload generators emit streams of MemRecord; the cache/prefetch
 * simulator and the analysis passes consume them. Records carry the two
 * annotations the paper's evaluation depends on:
 *
 *  - the PC of the memory instruction (spatial predictors index their
 *    pattern history by PC+offset, paper Section 2.4), and
 *  - a dependence link (pointer-chase loads depend on the value returned
 *    by an earlier load; the timing model serializes such chains, which
 *    is what temporal streaming accelerates, paper Section 2.1).
 */

#ifndef STEMS_TRACE_RECORD_HH
#define STEMS_TRACE_RECORD_HH

#include <cstdint>

#include "common/types.hh"

namespace stems {

/** What a trace record represents. */
enum class AccessKind : std::uint8_t
{
    kRead = 0,       ///< demand load
    kWrite = 1,      ///< demand store
    kInvalidate = 2, ///< coherence invalidation from a remote node
};

/**
 * One entry of a memory-access trace.
 */
struct MemRecord
{
    /** Byte address accessed (or invalidated). */
    Addr vaddr = 0;

    /** Program counter of the memory instruction (0 for invalidates). */
    Pc pc = 0;

    /**
     * Number of non-memory instructions executed since the previous
     * record; models compute gaps for the timing model.
     */
    std::uint32_t cpuOps = 0;

    /**
     * Dependence link: when > 0, this access's address was computed
     * from the data returned by the access depDist records earlier
     * (pointer chasing). 0 means address-independent.
     */
    std::uint32_t depDist = 0;

    /** Record kind. */
    AccessKind kind = AccessKind::kRead;

    /** Convenience predicates. */
    bool isRead() const { return kind == AccessKind::kRead; }
    bool isWrite() const { return kind == AccessKind::kWrite; }
    bool isInvalidate() const
    {
        return kind == AccessKind::kInvalidate;
    }
};

} // namespace stems

#endif // STEMS_TRACE_RECORD_HH
