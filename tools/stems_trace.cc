/**
 * @file
 * stems_trace — command-line trace utility.
 *
 *   stems_trace generate <workload> <records> <out.trc> [seed]
 *       Generate a workload trace and save it (compact v2 format).
 *   stems_trace info <trace.trc>
 *       Print summary statistics for a saved trace.
 *   stems_trace analyze <trace.trc>
 *       Run the Figure 6/8 characterization analyses on a trace.
 *   stems_trace run <trace.trc> <engines> [--jobs N] [--timing]
 *                   [--store DIR] [--batch|--no-batch]
 *                   [--metrics-out F] [--trace-out F]
 *                   [--manifest-out F]
 *       Run prefetch engines (comma-separated registry names) over a
 *       trace through the parallel ExperimentDriver and report
 *       coverage and accuracy. By default all cells advance together
 *       in one batched trace pass; --no-batch runs one pass per cell
 *       (bitwise-identical results). With a store (--store or
 *       $STEMS_STORE), baselines and per-engine results are cached
 *       under the trace's content digest, so re-runs skip both the
 *       baseline and the engine simulations.
 *   stems_trace import <in.txt> <out.trc> [--store DIR] [--name N]
 *       Convert an external text/CSV access trace (ChampSim-style
 *       pc,addr,is_write lines; see trace/text_trace.hh) to the
 *       binary format, optionally ingesting it into a TraceStore.
 *   stems_trace export <trace.trc> <out.txt>
 *       Write a binary trace back out as text (import-compatible).
 *   stems_trace cache ls [--store DIR]
 *   stems_trace cache gc <budget-bytes> [--store DIR]
 *       List / evict entries of the persistent store (--store or
 *       $STEMS_STORE selects the directory).
 *   stems_trace list
 *       List the built-in workloads.
 *   stems_trace sweep [bench flags] [--plan FILE] [--timing]
 *       Run a declarative SweepPlan single-process: either built
 *       from the shared bench flags (--workloads/--engines/
 *       --records/--seed/--jobs/...) or loaded from a plan JSON
 *       file (--plan; trace/policy flags are then ignored). With a
 *       store the sweep replays anything already cached.
 *   stems_trace serve [bench flags] [--plan FILE] [--timing]
 *               [--port P] [--serve-timeout S] [--resume-grace S]
 *               [--unit-timeout S]
 *       Same plan, distributed: listen for `stems_trace worker`
 *       processes, hand out work units — whole workload rows,
 *       (workload, engine) cells, or checkpoint segments of a cell
 *       per --unit-granularity — over the framed TCP protocol
 *       (src/net/), and after every unit has completed merge by
 *       running the plan locally over the shared (now warm) store.
 *       A dropped worker's unit stays reserved --resume-grace
 *       seconds for a reconnect-resume before it is requeued; the
 *       slow-worker watchdog requeues any unit held in flight past
 *       --unit-timeout (default: the serve timeout). Requires a
 *       store; stdout is bitwise identical to `stems_trace sweep`
 *       of the same plan.
 *   stems_trace worker --store DIR [--port P] [--host H]
 *               [--connect-timeout S] [--reconnects N]
 *               [--no-prefetch] [--metrics-out FILE]
 *               [--abandon-after N] [--drop-after N]
 *               [--drop-stall S] [--dup-done]
 *       Execute work units for a coordinator, simulating through
 *       the normal driver lane path into the shared store. The
 *       store directory must already exist. Fault hooks for tests
 *       and CI: --abandon-after vanishes without a goodbye after N
 *       units; --drop-after drops the connection once while holding
 *       a unit (stalling --drop-stall seconds), then reconnects and
 *       resumes it from the last committed checkpoint; --dup-done
 *       sends every completion twice.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <filesystem>

#include "analysis/correlation.hh"
#include "analysis/coverage.hh"
#include "bench/bench_util.hh"
#include "net/coord.hh"
#include "net/worker.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "sim/driver.hh"
#include "store/keys.hh"
#include "store/trace_store.hh"
#include "trace/text_trace.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"
#include "workloads/trace_workload.hh"

using namespace stems;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  stems_trace generate <workload> <records> <out.trc> "
        "[seed]\n"
        "  stems_trace info <trace.trc>\n"
        "  stems_trace analyze <trace.trc>\n"
        "  stems_trace run <trace.trc> <engine[,engine...]> "
        "[--jobs N] [--timing] [--store DIR] [--batch|--no-batch]\n"
        "              [--speculate] [--metrics-out F] "
        "[--trace-out F] [--manifest-out F]\n"
        "  stems_trace import <in.txt> <out.trc> [--store DIR] "
        "[--name NAME]\n"
        "  stems_trace export <trace.trc> <out.txt>\n"
        "  stems_trace cache ls [--store DIR]\n"
        "  stems_trace cache gc <budget-bytes> [--store DIR]\n"
        "  stems_trace list\n"
        "  stems_trace sweep [bench flags] [--plan FILE] "
        "[--timing]\n"
        "  stems_trace serve [bench flags] [--plan FILE] "
        "[--timing] [--port P] [--serve-timeout S] "
        "[--resume-grace S] [--unit-timeout S]\n"
        "  stems_trace worker --store DIR [--port P] [--host H] "
        "[--connect-timeout S] [--reconnects N] [--no-prefetch] "
        "[--metrics-out FILE] [--abandon-after N] "
        "[--drop-after N] [--drop-stall S] [--dup-done]\n");
    return 1;
}

/** Consume `--flag value` pairs / bare flags from an argv tail. */
struct ArgScanner
{
    std::vector<std::string> positional;
    std::string storeDir;
    std::string name;
    std::string metricsOut;
    std::string traceOut;
    std::string manifestOut;
    unsigned jobs = 1;
    bool timing = false;
    bool batch = true;
    bool speculate = false;
    bool ok = true;

    ArgScanner(int argc, char **argv, int first)
    {
        if (const char *env = std::getenv("STEMS_STORE"))
            storeDir = env;
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s wants a value\n",
                                 arg.c_str());
                    ok = false;
                    return "";
                }
                return argv[++i];
            };
            if (arg == "--store") {
                storeDir = value();
            } else if (arg == "--name") {
                name = value();
            } else if (arg == "--metrics-out") {
                metricsOut = value();
            } else if (arg == "--trace-out") {
                traceOut = value();
            } else if (arg == "--manifest-out") {
                manifestOut = value();
            } else if (arg == "--jobs" || arg == "-j") {
                jobs = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 10));
            } else if (arg == "--timing") {
                timing = true;
            } else if (arg == "--batch") {
                batch = true;
            } else if (arg == "--no-batch") {
                batch = false;
            } else if (arg == "--speculate") {
                speculate = true;
            } else if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                ok = false;
            } else {
                positional.push_back(arg);
            }
        }
    }
};

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> items;
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                items.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        items.push_back(cur);
    return items;
}

std::string
baseName(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

std::unique_ptr<TraceStore>
openStore(const std::string &dir)
{
    if (dir.empty()) {
        std::fprintf(stderr,
                     "no store directory (pass --store DIR or set "
                     "STEMS_STORE)\n");
        return nullptr;
    }
    auto store = std::make_unique<TraceStore>(dir);
    if (!store->usable()) {
        std::fprintf(stderr, "cannot open trace store '%s'\n",
                     dir.c_str());
        return nullptr;
    }
    return store;
}

int
cmdList()
{
    for (auto &w : makeAllWorkloads())
        std::printf("%-12s (%s)\n", w->name().c_str(),
                    workloadClassName(w->workloadClass()).c_str());
    return 0;
}

int
cmdGenerate(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    auto w = makeWorkload(argv[2]);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return 1;
    }
    std::size_t records = std::atol(argv[3]);
    std::uint64_t seed = argc > 5 ? std::atoll(argv[5]) : 42;
    Trace t = w->generate(seed, records);
    if (!writeTraceFileV2(argv[4], t)) {
        std::fprintf(stderr, "failed to write %s\n", argv[4]);
        return 1;
    }
    std::printf("wrote %zu records to %s\n", t.size(), argv[4]);
    return 0;
}

bool
loadTrace(const char *path, Trace &t)
{
    if (!readTraceFile(path, t)) {
        std::fprintf(stderr, "failed to read %s\n", path);
        return false;
    }
    return true;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;
    TraceSummary s = summarize(t);
    std::printf("records          : %zu\n", s.records);
    std::printf("reads            : %zu (%.1f%% dependent)\n",
                s.reads,
                100.0 * s.dependentReads / (s.reads ? s.reads : 1));
    std::printf("writes           : %zu\n", s.writes);
    std::printf("invalidates      : %zu\n", s.invalidates);
    std::printf("distinct blocks  : %zu (%.1f MB)\n",
                s.distinctBlocks,
                s.distinctBlocks * kBlockBytes / (1024.0 * 1024.0));
    std::printf("distinct regions : %zu\n", s.distinctRegions);
    std::printf("instructions     : %llu\n",
                static_cast<unsigned long long>(s.cpuOps +
                                                s.records));
    std::printf("digest           : %016llx\n",
                static_cast<unsigned long long>(traceDigest(t)));
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;

    JointCoverageAnalyzer joint;
    joint.run(t, t.size() / 2);
    const JointCoverage &jc = joint.result();
    std::printf("joint predictability (%llu warmed misses):\n",
                static_cast<unsigned long long>(jc.total()));
    std::printf("  both %5.1f%%  TMS-only %5.1f%%  SMS-only %5.1f%%"
                "  neither %5.1f%%\n\n",
                100.0 * jc.both / jc.total(),
                100.0 * jc.tmsOnly / jc.total(),
                100.0 * jc.smsOnly / jc.total(),
                100.0 * jc.neither / jc.total());

    CorrelationAnalyzer corr;
    corr.run(t);
    std::printf("intra-generation repetition (%llu pairs):\n",
                static_cast<unsigned long long>(
                    corr.distances().total()));
    std::printf("  perfect (+1) %5.1f%%  |d|<=2 %5.1f%%  |d|<=4 "
                "%5.1f%%\n",
                100.0 * corr.distances().count(1) /
                    (corr.distances().total()
                         ? corr.distances().total()
                         : 1),
                100.0 * corr.fractionWithinWindow(2),
                100.0 * corr.fractionWithinWindow(4));
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    ArgScanner args(argc, argv, 2);
    if (!args.ok || args.positional.size() != 2)
        return usage();
    Trace t;
    if (!loadTrace(args.positional[0].c_str(), t))
        return 1;

    std::vector<std::string> engines =
        splitList(args.positional[1]);
    const EngineRegistry &registry = EngineRegistry::instance();
    for (const std::string &e : engines) {
        if (!registry.contains(e)) {
            std::fprintf(stderr, "unknown engine '%s'\n", e.c_str());
            return 1;
        }
    }

    std::uint64_t digest = traceDigest(t);
    const std::size_t trace_records = t.size();
    FixedTraceWorkload workload(baseName(args.positional[0]),
                                std::move(t));
    // Describe the run as a plan (the trace itself is fixed, so
    // records documents its size and seed is immaterial) and let
    // applyPlan carry both the config and the execution policy.
    SweepPlan plan;
    plan.workloads = {workload.name()};
    for (const std::string &e : engines)
        plan.engines.push_back(PlanEngine{e, "", {}});
    plan.records = trace_records;
    plan.seed = 0;
    plan.timing = args.timing;
    plan.jobs = args.jobs;
    plan.batch = args.batch;
    plan.speculate = args.speculate;
    ExperimentDriver driver;
    driver.applyPlan(plan);
    if (args.speculate && args.storeDir.empty()) {
        std::fprintf(stderr,
                     "--speculate needs a store (pass --store DIR "
                     "or set STEMS_STORE)\n");
        return 1;
    }
    if (!args.storeDir.empty()) {
        auto store = std::make_shared<TraceStore>(args.storeDir);
        if (store->usable()) {
            // Content-digest keying gives imported/external traces
            // cross-process baseline caching too.
            driver.setStore(std::move(store));
        } else {
            std::fprintf(stderr,
                         "warning: cannot open trace store '%s'; "
                         "running without it\n",
                         args.storeDir.c_str());
        }
    }
    // Observability sinks: attach the span collector only when a
    // trace file was requested; metrics/manifest snapshot after the
    // run. Stdout stays identical with or without any sink.
    SpanCollector collector;
    if (!args.traceOut.empty())
        collector.attach();
    const std::uint64_t run_start = collector.nowNs();

    WorkloadResult r =
        driver.runWorkload(workload, engineSpecs(engines), digest);

    const std::uint64_t run_ns = collector.nowNs() - run_start;
    collector.detach();
    if (!args.traceOut.empty()) {
        std::string error;
        if (!collector.writeChromeJson(args.traceOut, &error)) {
            std::fprintf(stderr, "failed to write %s: %s\n",
                         args.traceOut.c_str(), error.c_str());
            return 1;
        }
        std::fprintf(stderr, "[obs] wrote trace %s (%zu events)\n",
                     args.traceOut.c_str(), collector.eventCount());
    }
    if (!args.metricsOut.empty() || !args.manifestOut.empty()) {
        MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
        std::string error;
        if (!args.metricsOut.empty()) {
            if (!writeMetricsJson(args.metricsOut, snap, &error)) {
                std::fprintf(stderr, "failed to write %s: %s\n",
                             args.metricsOut.c_str(), error.c_str());
                return 1;
            }
            std::fprintf(stderr, "[obs] wrote metrics %s\n",
                         args.metricsOut.c_str());
        }
        if (!args.manifestOut.empty()) {
            RunManifest manifest;
            manifest.tool = "stems_trace run";
            manifest.host = hostNote();
            manifest.config = {
                {"trace", args.positional[0]},
                {"engines", args.positional[1]},
                {"jobs", std::to_string(args.jobs)},
                {"timing", args.timing ? "true" : "false"},
                {"batch", args.batch ? "true" : "false"},
                {"speculate", args.speculate ? "true" : "false"},
                {"store", args.storeDir.empty() ? "(none)"
                                                : args.storeDir},
            };
            manifest.phaseNs = {{"run", run_ns}};
            manifest.wallNs = run_ns;
            manifest.metrics = std::move(snap);
            if (!writeRunManifestJson(args.manifestOut, manifest,
                                      &error)) {
                std::fprintf(stderr, "failed to write %s: %s\n",
                             args.manifestOut.c_str(),
                             error.c_str());
                return 1;
            }
            std::fprintf(stderr, "[obs] wrote manifest %s\n",
                         args.manifestOut.c_str());
        }
    }

    std::printf("trace %s: %llu baseline off-chip read misses\n\n",
                workload.name().c_str(),
                static_cast<unsigned long long>(r.baselineMisses));
    std::printf("%-10s %9s %9s %9s %9s%s\n", "engine", "covered",
                "uncovered", "overpred", "accuracy",
                args.timing ? "   speedup" : "");
    for (const EngineResult &e : r.engines) {
        double accuracy =
            e.stats.prefetchesIssued > 0
                ? static_cast<double>(e.stats.covered()) /
                      static_cast<double>(e.stats.prefetchesIssued)
                : 0.0;
        std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%%",
                    e.engine.c_str(), 100.0 * e.coverage,
                    100.0 * e.uncovered, 100.0 * e.overprediction,
                    100.0 * accuracy);
        if (args.timing)
            std::printf(" %+8.1f%%", 100.0 * (e.speedup - 1.0));
        std::printf("\n");
    }
    return 0;
}

int
cmdImport(int argc, char **argv)
{
    ArgScanner args(argc, argv, 2);
    if (!args.ok || args.positional.size() != 2)
        return usage();
    const std::string &in = args.positional[0];
    const std::string &out = args.positional[1];

    Trace t;
    std::string error;
    if (!importTextTrace(in, t, &error)) {
        std::fprintf(stderr, "import failed: %s\n", error.c_str());
        return 1;
    }
    if (!writeTraceFileV2(out, t)) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("imported %zu records from %s to %s\n", t.size(),
                in.c_str(), out.c_str());

    // Optional: ingest into the persistent store so driver sweeps
    // can replay it and cache baselines against its digest.
    if (!args.storeDir.empty()) {
        auto store = openStore(args.storeDir);
        if (!store)
            return 1;
        std::string name = args.name.empty()
                               ? "external:" + baseName(in)
                               : args.name;
        TraceKey key{name, t.size(), 0};
        if (auto info = store->putTrace(key, t)) {
            std::printf(
                "stored as '%s' (digest %016llx, %llu bytes)\n",
                name.c_str(),
                static_cast<unsigned long long>(info->digest),
                static_cast<unsigned long long>(info->bytes));
        } else {
            std::fprintf(stderr, "failed to store entry\n");
            return 1;
        }
    }
    return 0;
}

int
cmdExport(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;
    if (!exportTextTrace(argv[3], t)) {
        std::fprintf(stderr, "failed to write %s\n", argv[3]);
        return 1;
    }
    std::printf("exported %zu records to %s\n", t.size(), argv[3]);
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string sub = argv[2];
    ArgScanner args(argc, argv, 3);
    if (!args.ok)
        return usage();
    auto store = openStore(args.storeDir);
    if (!store)
        return 1;

    if (sub == "ls") {
        auto entries = store->list();
        std::uint64_t total = 0;
        for (const StoreEntry &e : entries) {
            const char *kind = "trace";
            if (e.kind == StoreEntry::Kind::kBaseline)
                kind = "baseline";
            else if (e.kind == StoreEntry::Kind::kResult)
                kind = "result";
            else if (e.kind == StoreEntry::Kind::kCheckpoint)
                kind = "checkpoint";
            std::printf("%-10s %10llu B  %6llds  %s\n", kind,
                        static_cast<unsigned long long>(e.bytes),
                        static_cast<long long>(e.ageSeconds),
                        e.description.c_str());
            total += e.bytes;
        }
        std::printf("%zu entries, %llu bytes total in %s\n",
                    entries.size(),
                    static_cast<unsigned long long>(total),
                    store->dir().c_str());
        return 0;
    }
    if (sub == "gc") {
        if (args.positional.empty())
            return usage();
        std::uint64_t budget =
            std::strtoull(args.positional[0].c_str(), nullptr, 10);
        std::uint64_t removed = store->evictWithin(budget);
        std::printf("evicted %llu bytes; store now %llu bytes\n",
                    static_cast<unsigned long long>(removed),
                    static_cast<unsigned long long>(
                        store->totalBytes()));
        return 0;
    }
    return usage();
}

// ---- declarative sweeps: sweep / serve / worker ------------------

/**
 * Service flags peeled off before the shared bench CLI parses the
 * rest, so `sweep`/`serve` accept every bench flag (--workloads,
 * --engines, --records, --store, --json, obs sinks, ...) plus the
 * service-specific ones.
 */
struct ServiceArgs
{
    std::string planPath;
    bool timing = false;
    unsigned port = 0;
    double serveTimeout = 600.0;
    /// How long a dropped session's unit stays reserved for a
    /// kResume before it is requeued.
    double resumeGrace = 5.0;
    /// Slow-worker watchdog: requeue a unit held in flight longer
    /// than this. Negative = derive from --serve-timeout (a unit
    /// held past the whole serve window can only time the sweep
    /// out, so the watchdog reclaims it first).
    double unitTimeout = -1.0;
    std::vector<char *> rest;
    bool ok = true;

    ServiceArgs(int argc, char **argv)
    {
        rest.push_back(argv[0]);
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s wants a value\n",
                                 arg.c_str());
                    ok = false;
                    return "";
                }
                return argv[++i];
            };
            if (arg == "--plan") {
                planPath = value();
            } else if (arg == "--timing") {
                timing = true;
            } else if (arg == "--port") {
                port = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 10));
            } else if (arg == "--serve-timeout") {
                serveTimeout = std::strtod(value(), nullptr);
            } else if (arg == "--resume-grace") {
                resumeGrace = std::strtod(value(), nullptr);
            } else if (arg == "--unit-timeout") {
                unitTimeout = std::strtod(value(), nullptr);
            } else {
                rest.push_back(argv[i]);
            }
        }
    }
};

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    std::size_t n;
    out.clear();
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** The plan for sweep/serve: --plan FILE wins; otherwise built from
 *  the bench flags via the one CLI->plan mapping (benchPlan). */
bool
buildServicePlan(const BenchOptions &opts, const ServiceArgs &svc,
                 SweepPlan &plan)
{
    if (!svc.planPath.empty()) {
        std::string text, parse_error;
        if (!readWholeFile(svc.planPath, text)) {
            std::fprintf(stderr, "cannot read plan '%s'\n",
                         svc.planPath.c_str());
            return false;
        }
        if (!parseSweepPlanJson(text, plan, &parse_error)) {
            std::fprintf(stderr, "bad plan '%s': %s\n",
                         svc.planPath.c_str(),
                         parse_error.c_str());
            return false;
        }
        return true;
    }
    plan = benchPlan(opts, svc.timing, benchWorkloads(opts),
                     benchEngines(opts, {"tms", "sms", "stems"}));
    return true;
}

/**
 * Banner + results shared verbatim by `sweep` and `serve`: both are
 * derived from the plan and the results only — never from the store
 * directory, port, or worker count — so distributed stdout is
 * bitwise identical to single-process stdout.
 */
void
printPlanBanner(const SweepPlan &plan)
{
    std::printf("sweep plan %016llx: %zu workload(s) x %zu "
                "engine(s), %llu records, seed %llu%s\n\n",
                static_cast<unsigned long long>(
                    sweepPlanDigest(plan)),
                plan.workloads.size(), plan.engines.size(),
                static_cast<unsigned long long>(plan.records),
                static_cast<unsigned long long>(plan.seed),
                plan.timing ? ", timing" : "");
}

void
printSweepResults(const SweepPlan &plan,
                  const std::vector<WorkloadResult> &results)
{
    for (const WorkloadResult &r : results) {
        std::printf("%s: %llu baseline off-chip read misses\n",
                    r.workload.c_str(),
                    static_cast<unsigned long long>(
                        r.baselineMisses));
        std::printf("%-12s %9s %9s %9s%s\n", "engine", "covered",
                    "uncovered", "overpred",
                    plan.timing ? "   speedup" : "");
        for (const EngineResult &e : r.engines) {
            std::printf("%-12s %8.1f%% %8.1f%% %8.1f%%",
                        e.engine.c_str(), 100.0 * e.coverage,
                        100.0 * e.uncovered,
                        100.0 * e.overprediction);
            if (plan.timing)
                std::printf(" %+8.1f%%", 100.0 * (e.speedup - 1.0));
            std::printf("\n");
        }
        std::printf("\n");
    }
}

int
cmdSweep(int argc, char **argv)
{
    ServiceArgs svc(argc, argv);
    if (!svc.ok)
        return usage();
    BenchOptions opts = parseBenchOptions(
        static_cast<int>(svc.rest.size()), svc.rest.data(),
        2'000'000);
    BenchObsSession obs(opts, "stems_trace sweep");
    SweepPlan plan;
    if (!buildServicePlan(opts, svc, plan))
        return 1;
    printPlanBanner(plan);

    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    printSweepResults(plan, results);
    reportStoreStats(driver);
    obs.finish();
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    ServiceArgs svc(argc, argv);
    if (!svc.ok)
        return usage();
    BenchOptions opts = parseBenchOptions(
        static_cast<int>(svc.rest.size()), svc.rest.data(),
        2'000'000);
    BenchObsSession obs(opts, "stems_trace serve");
    SweepPlan plan;
    if (!buildServicePlan(opts, svc, plan))
        return 1;
    if (opts.storeDir.empty()) {
        std::fprintf(stderr,
                     "serve needs a shared store (--store DIR or "
                     "STEMS_STORE): workers deliver results "
                     "through it\n");
        return 1;
    }
    printPlanBanner(plan);

    // Decompose up front: at segment granularity this is the
    // seeding pass — traces land in the store and the unit
    // boundaries come off the real trace lengths. The same store
    // the workers and the merge use, so stale contents only ever
    // cost scheduling freedom, never correctness.
    auto store = std::make_shared<TraceStore>(opts.storeDir);
    std::string error;
    if (!store->usable()) {
        std::fprintf(stderr, "serve: cannot open store '%s'\n",
                     opts.storeDir.c_str());
        return 1;
    }
    std::vector<WorkUnit> units =
        decomposeSweepPlan(plan, store.get(), &error);
    if (units.empty() && !plan.workloads.empty()) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }

    SweepCoordinator coord(plan, std::move(units));
    coord.setResumeGraceSeconds(svc.resumeGrace);
    coord.setUnitTimeoutSeconds(
        svc.unitTimeout >= 0.0 ? svc.unitTimeout
                               : svc.serveTimeout);
    if (!coord.listen(static_cast<std::uint16_t>(svc.port),
                      &error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "[serve] listening on port %u, %zu %s "
                         "unit(s)\n",
                 coord.port(), coord.unitCount(),
                 unitGranularityName(plan.unitGranularity));
    if (!coord.serve(svc.serveTimeout, &error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "[serve] %llu unit(s) completed by %llu worker(s)"
                 " (%llu requeued) (%llu resumed); merging from "
                 "store\n",
                 static_cast<unsigned long long>(
                     coord.unitsCompleted()),
                 static_cast<unsigned long long>(
                     coord.workersSeen()),
                 static_cast<unsigned long long>(
                     coord.unitsRequeued()),
                 static_cast<unsigned long long>(
                     coord.unitsResumed()));

    // Merge: the same plan over the now-warm shared store. Every
    // cell the workers ran is a store hit, so this reproduces the
    // single-process output bitwise in fixed plan order.
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    printSweepResults(plan, results);
    reportStoreStats(driver);
    obs.finish();
    return 0;
}

int
cmdWorker(int argc, char **argv)
{
    WorkerOptions w;
    if (const char *env = std::getenv("STEMS_STORE"))
        w.storeDir = env;
    unsigned abandon = 0;
    std::string metrics_out;
    bool ok = true;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             arg.c_str());
                ok = false;
                return "";
            }
            return argv[++i];
        };
        if (arg == "--store") {
            w.storeDir = value();
        } else if (arg == "--port") {
            w.port = static_cast<std::uint16_t>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--host") {
            w.host = value();
        } else if (arg == "--connect-timeout") {
            w.connectTimeoutSeconds = std::strtod(value(), nullptr);
        } else if (arg == "--abandon-after") {
            abandon = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--drop-after") {
            w.dropAfterUnits = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--drop-stall") {
            w.reconnectStallSeconds =
                std::strtod(value(), nullptr);
        } else if (arg == "--dup-done") {
            w.duplicateUnitDone = true;
        } else if (arg == "--reconnects") {
            w.maxReconnects = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--no-prefetch") {
            w.prefetchTraces = false;
        } else if (arg == "--metrics-out") {
            metrics_out = value();
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            ok = false;
        }
    }
    w.abandonAfterUnits = abandon;
    if (!ok || w.port == 0) {
        std::fprintf(stderr, "worker needs --port P\n");
        return usage();
    }
    if (w.storeDir.empty()) {
        std::fprintf(stderr,
                     "worker needs a store (--store DIR or "
                     "STEMS_STORE)\n");
        return 1;
    }
    // Validate the store directory before touching the network:
    // a worker pointed at the wrong path would otherwise connect,
    // take units, and fail them one by one.
    std::error_code ec;
    if (!std::filesystem::is_directory(w.storeDir, ec)) {
        std::fprintf(stderr, "no trace store at '%s'\n",
                     w.storeDir.c_str());
        return 1;
    }

    WorkerReport report;
    std::string error;
    const bool worker_ok = runWorker(w, &report, &error);
    if (!metrics_out.empty()) {
        // Written on failure too: a faulted worker's counters
        // (units completed before the fault, resume bookkeeping)
        // are exactly what a post-mortem wants.
        std::string obs_error;
        if (!writeMetricsJson(metrics_out,
                              MetricsRegistry::instance()
                                  .snapshot(),
                              &obs_error))
            std::fprintf(stderr, "worker: %s\n",
                         obs_error.c_str());
    }
    if (!worker_ok) {
        std::fprintf(stderr, "worker: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "[worker] %llu unit(s) completed "
                 "(%llu resumed, %llu reconnect(s))%s\n",
                 static_cast<unsigned long long>(
                     report.unitsCompleted),
                 static_cast<unsigned long long>(
                     report.unitsResumed),
                 static_cast<unsigned long long>(
                     report.reconnects),
                 report.abandoned ? " (abandoned)" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList();
    if (std::strcmp(argv[1], "generate") == 0)
        return cmdGenerate(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc, argv);
    if (std::strcmp(argv[1], "import") == 0)
        return cmdImport(argc, argv);
    if (std::strcmp(argv[1], "export") == 0)
        return cmdExport(argc, argv);
    if (std::strcmp(argv[1], "cache") == 0)
        return cmdCache(argc, argv);
    if (std::strcmp(argv[1], "sweep") == 0)
        return cmdSweep(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0)
        return cmdServe(argc, argv);
    if (std::strcmp(argv[1], "worker") == 0)
        return cmdWorker(argc, argv);
    return usage();
}
