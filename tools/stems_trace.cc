/**
 * @file
 * stems_trace — command-line trace utility.
 *
 *   stems_trace generate <workload> <records> <out.trc> [seed]
 *       Generate a workload trace and save it in the binary format.
 *   stems_trace info <trace.trc>
 *       Print summary statistics for a saved trace.
 *   stems_trace analyze <trace.trc>
 *       Run the Figure 6/8 characterization analyses on a trace.
 *   stems_trace run <trace.trc> <engine>
 *       Run a prefetch engine (stride|tms|sms|stems|tms+sms) over a
 *       trace and report coverage.
 *   stems_trace list
 *       List the built-in workloads.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/correlation.hh"
#include "analysis/coverage.hh"
#include "sim/experiment.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

using namespace stems;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  stems_trace generate <workload> <records> <out.trc> "
        "[seed]\n"
        "  stems_trace info <trace.trc>\n"
        "  stems_trace analyze <trace.trc>\n"
        "  stems_trace run <trace.trc> <engine>\n"
        "  stems_trace list\n");
    return 1;
}

int
cmdList()
{
    for (auto &w : makeAllWorkloads())
        std::printf("%-12s (%s)\n", w->name().c_str(),
                    workloadClassName(w->workloadClass()).c_str());
    return 0;
}

int
cmdGenerate(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    auto w = makeWorkload(argv[2]);
    if (!w) {
        std::fprintf(stderr, "unknown workload '%s'\n", argv[2]);
        return 1;
    }
    std::size_t records = std::atol(argv[3]);
    std::uint64_t seed = argc > 5 ? std::atoll(argv[5]) : 42;
    Trace t = w->generate(seed, records);
    if (!writeTraceFile(argv[4], t)) {
        std::fprintf(stderr, "failed to write %s\n", argv[4]);
        return 1;
    }
    std::printf("wrote %zu records to %s\n", t.size(), argv[4]);
    return 0;
}

bool
loadTrace(const char *path, Trace &t)
{
    if (!readTraceFile(path, t)) {
        std::fprintf(stderr, "failed to read %s\n", path);
        return false;
    }
    return true;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;
    TraceSummary s = summarize(t);
    std::printf("records          : %zu\n", s.records);
    std::printf("reads            : %zu (%.1f%% dependent)\n",
                s.reads,
                100.0 * s.dependentReads / (s.reads ? s.reads : 1));
    std::printf("writes           : %zu\n", s.writes);
    std::printf("invalidates      : %zu\n", s.invalidates);
    std::printf("distinct blocks  : %zu (%.1f MB)\n",
                s.distinctBlocks,
                s.distinctBlocks * kBlockBytes / (1024.0 * 1024.0));
    std::printf("distinct regions : %zu\n", s.distinctRegions);
    std::printf("instructions     : %llu\n",
                static_cast<unsigned long long>(s.cpuOps +
                                                s.records));
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;

    JointCoverageAnalyzer joint;
    joint.run(t, t.size() / 2);
    const JointCoverage &jc = joint.result();
    std::printf("joint predictability (%llu warmed misses):\n",
                static_cast<unsigned long long>(jc.total()));
    std::printf("  both %5.1f%%  TMS-only %5.1f%%  SMS-only %5.1f%%"
                "  neither %5.1f%%\n\n",
                100.0 * jc.both / jc.total(),
                100.0 * jc.tmsOnly / jc.total(),
                100.0 * jc.smsOnly / jc.total(),
                100.0 * jc.neither / jc.total());

    CorrelationAnalyzer corr;
    corr.run(t);
    std::printf("intra-generation repetition (%llu pairs):\n",
                static_cast<unsigned long long>(
                    corr.distances().total()));
    std::printf("  perfect (+1) %5.1f%%  |d|<=2 %5.1f%%  |d|<=4 "
                "%5.1f%%\n",
                100.0 * corr.distances().count(1) /
                    (corr.distances().total()
                         ? corr.distances().total()
                         : 1),
                100.0 * corr.fractionWithinWindow(2),
                100.0 * corr.fractionWithinWindow(4));
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    Trace t;
    if (!loadTrace(argv[2], t))
        return 1;

    ExperimentRunner runner(ExperimentConfig{});
    auto engine = runner.makeEngine(argv[3], false);
    if (!engine) {
        std::fprintf(stderr, "unknown engine '%s'\n", argv[3]);
        return 1;
    }

    SimParams sp;
    PrefetchSimulator base(sp, nullptr);
    base.run(t, t.size() / 2);
    double denom = base.stats().offChipReads;

    PrefetchSimulator sim(sp, engine.get());
    sim.run(t, t.size() / 2);
    std::printf("engine %s: covered %.1f%%  uncovered %.1f%%  "
                "overpredicted %.1f%% (of %llu baseline misses)\n",
                argv[3], 100.0 * sim.stats().covered() / denom,
                100.0 * sim.stats().offChipReads / denom,
                100.0 * sim.stats().overpredictions / denom,
                static_cast<unsigned long long>(
                    base.stats().offChipReads));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList();
    if (std::strcmp(argv[1], "generate") == 0)
        return cmdGenerate(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc, argv);
    return usage();
}
