/**
 * @file
 * stems_report — run-comparison and trajectory reporting over bench
 * `--json` result files and the persistent TraceStore.
 *
 *   stems_report compare <old.json> <new.json>
 *       [--format md|csv] [--threshold F] [-o FILE]
 *       [--fail-on-delta] [--fail-on-regression]
 *     Per-(workload, engine) coverage/accuracy/overprediction/
 *     speedup deltas between two stored runs, with regressions
 *     beyond the threshold highlighted. --fail-on-delta exits 2
 *     when any cell differs (CI uses this with the default
 *     threshold 0 to pin warm == cold); --fail-on-regression exits
 *     2 only when a metric got *worse* beyond the threshold.
 *
 *   stems_report history [--store DIR] [--bench DIR]
 *       [--format md|csv] [-o FILE]
 *     Orders the engine results cached in a store (--store or
 *     $STEMS_STORE) by save timestamp into a trajectory table.
 *     --bench DIR additionally renders the committed BENCH_*.json
 *     performance snapshots (sorted by file name) below it; with
 *     --bench alone, only the snapshot trajectory is shown.
 *
 *   stems_report bench <old.json> <new.json>
 *       [--tolerance F] [-o FILE] [--fail-on-regression]
 *     Compares two performance snapshots (stems-micro-v1 or
 *     stems-perf-v1, as written by micro_engines --json and the
 *     fig9 --perf flag): per-component throughput deltas.
 *     --fail-on-regression exits 2 when any component's ops/sec
 *     fell below old * (1 - tolerance); the CI perf gates use
 *     tolerance 0.15.
 *
 *   stems_report metrics <metrics.json> [<old-metrics.json>]
 *       [-o FILE]
 *     Renders a stems-metrics-v1 snapshot (written by the bench
 *     --metrics-out flag and `stems_trace run --metrics-out`) as
 *     markdown: counters, gauges and latency-histogram summaries.
 *     With a second file, the first is treated as the newer
 *     snapshot and a delta column is added.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "analysis/report.hh"
#include "obs/metrics.hh"
#include "store/trace_store.hh"

using namespace stems;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  stems_report compare <old.json> <new.json>\n"
        "      [--format md|csv] [--threshold F] [-o FILE]\n"
        "      [--fail-on-delta] [--fail-on-regression]\n"
        "  stems_report history [--store DIR] [--bench DIR]\n"
        "      [--format md|csv] [-o FILE]\n"
        "  stems_report bench <old.json> <new.json>\n"
        "      [--tolerance F] [-o FILE] [--fail-on-regression]\n"
        "  stems_report metrics <metrics.json> "
        "[<old-metrics.json>] [-o FILE]\n"
        "\n"
        "  --format md|csv      output format (default: md)\n"
        "  --threshold F        |delta| <= F does not count as a\n"
        "                       change (default: 0 = exact)\n"
        "  -o FILE              write the report to FILE instead of\n"
        "                       stdout\n"
        "  --fail-on-delta      exit 2 when any cell changed\n"
        "  --fail-on-regression exit 2 when any cell regressed\n"
        "  --store DIR          store directory (default:\n"
        "                       $STEMS_STORE when set)\n"
        "  --bench DIR          directory of committed BENCH_*.json\n"
        "                       performance snapshots\n"
        "  --tolerance F        allowed fractional throughput drop\n"
        "                       for `bench` (default: 0.15)\n");
    return 1;
}

struct Args
{
    std::vector<std::string> positional;
    std::string format = "md";
    std::string outPath;
    std::string storeDir;
    std::string benchDir;
    double threshold = 0.0;
    double tolerance = 0.15;
    bool failOnDelta = false;
    bool failOnRegression = false;
    bool ok = true;

    Args(int argc, char **argv, int first)
    {
        if (const char *env = std::getenv("STEMS_STORE"))
            storeDir = env;
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s wants a value\n",
                                 arg.c_str());
                    ok = false;
                    return "";
                }
                return argv[++i];
            };
            if (arg == "--format") {
                format = value();
                if (format != "md" && format != "csv") {
                    std::fprintf(stderr,
                                 "--format wants md or csv\n");
                    ok = false;
                }
            } else if (arg == "--threshold") {
                const char *v = value();
                char *end = nullptr;
                threshold = std::strtod(v, &end);
                if (end == v || *end != '\0' || threshold < 0) {
                    std::fprintf(stderr,
                                 "--threshold wants a non-negative "
                                 "number, got '%s'\n",
                                 v);
                    ok = false;
                }
            } else if (arg == "--tolerance") {
                const char *v = value();
                char *end = nullptr;
                tolerance = std::strtod(v, &end);
                if (end == v || *end != '\0' || tolerance < 0) {
                    std::fprintf(stderr,
                                 "--tolerance wants a non-negative "
                                 "number, got '%s'\n",
                                 v);
                    ok = false;
                }
            } else if (arg == "-o" || arg == "--output") {
                outPath = value();
            } else if (arg == "--store") {
                storeDir = value();
            } else if (arg == "--bench") {
                benchDir = value();
            } else if (arg == "--fail-on-delta") {
                failOnDelta = true;
            } else if (arg == "--fail-on-regression") {
                failOnRegression = true;
            } else if (!arg.empty() && arg[0] == '-') {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                ok = false;
            } else {
                positional.push_back(arg);
            }
        }
    }
};

int
emit(const std::string &report, const std::string &out_path)
{
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    bool ok = std::fwrite(report.data(), 1, report.size(), f) ==
              report.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(stderr, "[report] wrote %s\n", out_path.c_str());
    return 0;
}

int
cmdCompare(const Args &args)
{
    if (args.positional.size() != 2)
        return usage();
    RunData old_run, new_run;
    std::string error;
    if (!loadResultsJson(args.positional[0], old_run, &error) ||
        !loadResultsJson(args.positional[1], new_run, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    RunComparison cmp =
        compareRuns(old_run, new_run, args.threshold);
    std::string report =
        args.format == "csv"
            ? renderComparisonCsv(cmp)
            : renderComparisonMarkdown(cmp, old_run, new_run,
                                       args.threshold);
    int rc = emit(report, args.outPath);
    if (rc != 0)
        return rc;
    if (args.failOnDelta && cmp.changed > 0) {
        std::fprintf(stderr, "%zu cells changed\n", cmp.changed);
        return 2;
    }
    if (args.failOnRegression && cmp.regressions > 0) {
        std::fprintf(stderr, "%zu cells regressed\n",
                     cmp.regressions);
        return 2;
    }
    return 0;
}

/**
 * Load the committed BENCH_*.json snapshots under `dir`, sorted by
 * file name (the naming convention orders the trajectory).
 */
bool
loadBenchDir(const std::string &dir,
             std::vector<BenchSnapshot> &out)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
        std::fprintf(stderr, "no snapshot directory at '%s'\n",
                     dir.c_str());
        return false;
    }
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        BenchSnapshot snap;
        std::string error;
        if (!loadBenchSnapshotJson(path, snap, &error)) {
            std::fprintf(stderr, "%s\n", error.c_str());
            return false;
        }
        out.push_back(std::move(snap));
    }
    if (out.empty()) {
        std::fprintf(stderr, "no BENCH_*.json snapshots in '%s'\n",
                     dir.c_str());
        return false;
    }
    return true;
}

int
cmdBench(const Args &args)
{
    if (args.positional.size() != 2)
        return usage();
    BenchSnapshot old_snap, new_snap;
    std::string error;
    if (!loadBenchSnapshotJson(args.positional[0], old_snap,
                               &error) ||
        !loadBenchSnapshotJson(args.positional[1], new_snap,
                               &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    BenchComparison cmp =
        compareBenchSnapshots(old_snap, new_snap, args.tolerance);
    std::string report = renderBenchComparisonMarkdown(
        cmp, old_snap, new_snap, args.tolerance);
    int rc = emit(report, args.outPath);
    if (rc != 0)
        return rc;
    if (cmp.configMismatch) {
        std::fprintf(stderr,
                     "snapshots are not comparable (schema, records "
                     "or seed differ)\n");
        return 2;
    }
    if (args.failOnRegression && cmp.regressions > 0) {
        std::fprintf(stderr, "%zu components regressed\n",
                     cmp.regressions);
        return 2;
    }
    return 0;
}

int
cmdMetrics(const Args &args)
{
    if (args.positional.empty() || args.positional.size() > 2)
        return usage();
    MetricsSnapshot snap;
    std::string error;
    if (!loadMetricsJson(args.positional[0], snap, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    MetricsSnapshot old_snap;
    bool have_old = args.positional.size() == 2;
    if (have_old &&
        !loadMetricsJson(args.positional[1], old_snap, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    return emit(renderMetricsMarkdown(
                    snap, have_old ? &old_snap : nullptr),
                args.outPath);
}

int
cmdHistory(const Args &args)
{
    if (!args.positional.empty())
        return usage();
    // --bench alone: just the committed snapshot trajectory.
    if (args.storeDir.empty() && !args.benchDir.empty()) {
        std::vector<BenchSnapshot> snaps;
        if (!loadBenchDir(args.benchDir, snaps))
            return 1;
        return emit(renderBenchHistoryMarkdown(snaps),
                    args.outPath);
    }
    if (args.storeDir.empty()) {
        std::fprintf(stderr,
                     "no store directory (pass --store DIR or set "
                     "STEMS_STORE)\n");
        return 1;
    }
    // Read-only query: a mistyped path must error out, not be
    // silently created (TraceStore's constructor would mkdir it)
    // and reported as an empty history.
    std::error_code ec;
    if (!std::filesystem::is_directory(args.storeDir, ec)) {
        std::fprintf(stderr, "no trace store at '%s'\n",
                     args.storeDir.c_str());
        return 1;
    }
    TraceStore store(args.storeDir);
    if (!store.usable()) {
        std::fprintf(stderr, "cannot open trace store '%s'\n",
                     args.storeDir.c_str());
        return 1;
    }
    auto entries = store.listResults();
    std::string report =
        args.format == "csv"
            ? renderHistoryCsv(entries)
            : renderHistoryMarkdown(entries, store.dir());
    // Store + snapshots: the perf trajectory rides below the result
    // history (markdown only; the csv schema is per-result-cell).
    if (!args.benchDir.empty()) {
        if (args.format == "csv") {
            std::fprintf(stderr,
                         "--bench is markdown-only (the csv schema "
                         "has no snapshot rows)\n");
            return 1;
        }
        std::vector<BenchSnapshot> snaps;
        if (!loadBenchDir(args.benchDir, snaps))
            return 1;
        report += "\n";
        report += renderBenchHistoryMarkdown(snaps);
    }
    return emit(report, args.outPath);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Args args(argc, argv, 2);
    if (!args.ok)
        return usage();
    if (std::strcmp(argv[1], "compare") == 0)
        return cmdCompare(args);
    if (std::strcmp(argv[1], "history") == 0)
        return cmdHistory(args);
    if (std::strcmp(argv[1], "bench") == 0)
        return cmdBench(args);
    if (std::strcmp(argv[1], "metrics") == 0)
        return cmdMetrics(args);
    return usage();
}
