#!/usr/bin/env bash
# Fail when any Markdown file contains a relative link to a file
# that does not exist. External (http/https/mailto) and pure-anchor
# links are skipped; "path#anchor" links are checked for the path
# part only (anchor existence is not verified).
#
# Usage: scripts/check_doc_links.sh [root-dir]
set -u

root="${1:-.}"
status=0

# Markdown files, excluding build trees and dot-directories.
files=$(find "$root" \( -name build -o -name .git -o -name .claude \) \
             -prune -o -name '*.md' -print)

for f in $files; do
    dir=$(dirname "$f")
    # Extract every ](...) target, tolerating several links per
    # line. Fenced code blocks are dropped first: a C++ lambda
    # `[](...)` is not a Markdown link.
    links=$(awk '/^[[:space:]]*```/ { fence = !fence; next }
                 !fence { print }' "$f" |
            grep -oE '\]\([^)]+\)' | sed 's/^](//; s/)$//')
    while IFS= read -r link; do
        [ -z "$link" ] && continue
        case "$link" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${link%%#*}"      # strip an anchor suffix
        path="${path%% *}"      # strip a '... "title"' suffix
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "$f: dead link -> $link" >&2
            status=1
        fi
    done <<EOF
$links
EOF
done

if [ "$status" -eq 0 ]; then
    echo "all Markdown relative links resolve"
fi
exit $status
