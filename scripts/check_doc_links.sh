#!/usr/bin/env bash
# Fail when any Markdown file contains a dead relative link or a
# dead heading anchor:
#
#  - "path" / "path#anchor": the path must exist relative to the
#    file; when the target is a Markdown file and an anchor is given,
#    the anchor must match one of its headings;
#  - "#anchor": the current file must contain a matching heading.
#
# External (http/https/mailto) links are skipped. Anchors are
# matched GitHub-style: headings lowercased, punctuation stripped,
# spaces turned into hyphens (a trailing -N disambiguator is
# accepted for duplicate headings). Every *.md outside build/dot
# directories is scanned — including root-level files such as
# ISSUE.md and CHANGES.md.
#
# Usage: scripts/check_doc_links.sh [root-dir]
set -u

root="${1:-.}"
status=0

# Markdown files, excluding build trees and dot-directories.
files=$(find "$root" \( -name 'build*' -o -name .git -o -name .claude \) \
             -prune -o -name '*.md' -print)

# ATX headings of a file (fenced code blocks dropped), one per line.
# (No {1,6} interval: mawk, Debian's default awk, lacks them.)
headings() {
    awk '/^[[:space:]]*```/ { fence = !fence; next }
         !fence && /^#+ / { sub(/^#+[[:space:]]*/, ""); print }' \
        "$1"
}

# GitHub-style slug: lowercase, drop everything but alphanumerics,
# underscores, spaces and hyphens, then spaces -> hyphens.
slugify() {
    printf '%s' "$1" | tr '[:upper:]' '[:lower:]' |
        sed 's/[^a-z0-9_ -]//g; s/ /-/g'
}

# Does file $1 contain a heading matching anchor $2?
has_anchor() {
    local file="$1" anchor="$2" base h
    # Accept a -N suffix (GitHub's duplicate-heading disambiguator).
    base=$(printf '%s' "$anchor" | sed 's/-[0-9][0-9]*$//')
    while IFS= read -r h; do
        h=$(slugify "$h")
        [ "$h" = "$anchor" ] || [ "$h" = "$base" ] && return 0
    done <<EOF
$(headings "$file")
EOF
    return 1
}

for f in $files; do
    dir=$(dirname "$f")
    # Extract every ](...) target, tolerating several links per
    # line. Fenced code blocks are dropped first: a C++ lambda
    # `[](...)` is not a Markdown link.
    links=$(awk '/^[[:space:]]*```/ { fence = !fence; next }
                 !fence { print }' "$f" |
            grep -oE '\]\([^)]+\)' | sed 's/^](//; s/)$//')
    while IFS= read -r link; do
        [ -z "$link" ] && continue
        case "$link" in
            http://*|https://*|mailto:*) continue ;;
        esac
        path="${link%%#*}"      # path part ('' for pure anchors)
        path="${path%% *}"      # strip a '... "title"' suffix
        anchor=""
        case "$link" in
            *\#*) anchor="${link#*#}"; anchor="${anchor%% *}" ;;
        esac
        if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
            echo "$f: dead link -> $link" >&2
            status=1
            continue
        fi
        if [ -n "$anchor" ]; then
            target="$f"
            [ -n "$path" ] && target="$dir/$path"
            case "$target" in
                *.md)
                    if ! has_anchor "$target" "$anchor"; then
                        echo "$f: dead anchor -> $link" >&2
                        status=1
                    fi
                    ;;
            esac
        fi
    done <<EOF
$links
EOF
done

if [ "$status" -eq 0 ]; then
    echo "all Markdown links and anchors resolve"
fi
exit $status
