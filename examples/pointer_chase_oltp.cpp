/**
 * @file
 * Why temporal streaming wins on pointer chases: a B-tree-style
 * traversal where every page lookup depends on data loaded from the
 * previous page. The baseline serializes one memory round-trip per
 * hop; TMS and STeMS replay the recorded miss order and fetch the
 * chain elements in parallel (paper Section 2.1), while SMS — with
 * nothing spatial to learn across randomly placed nodes — cannot
 * help.
 *
 * Run: ./build/examples/pointer_chase_oltp
 */

#include <cstdio>
#include <vector>

#include "sim/prefetch_sim.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

using namespace stems;

namespace {

Trace
buildChase(int chains, int hops, int repeats)
{
    Rng rng(11);
    PageAllocator pool(rng.fork(1), 1 << 22);
    // Each chain is a fixed list of nodes; traversals repeat.
    std::vector<std::vector<Addr>> chain(chains);
    for (auto &c : chain)
        for (int h = 0; h < hops; ++h)
            c.push_back(pool.alloc());

    TraceBuilder b;
    Rng pick(12);
    for (int r = 0; r < repeats * chains; ++r) {
        const auto &c = chain[pick.below(chains)];
        b.breakChain();
        for (Addr node : c)
            b.read(node, 0x3000, 4, /*dep_on_prev_read=*/true);
    }
    return b.take();
}

} // namespace

int
main()
{
    Trace trace = buildChase(/*chains=*/48, /*hops=*/120,
                             /*repeats=*/12);
    std::printf("pointer chase: 48 chains x 120 dependent hops, "
                "repeated\n\n");

    std::printf("%-8s %10s %10s %12s\n", "engine", "covered",
                "overpred", "speedup");
    ExperimentConfig cfg;
    cfg.enableTiming = true;

    // Baselines.
    SimParams sp;
    sp.enableTiming = true;
    PrefetchSimulator base(sp, nullptr);
    base.run(trace, trace.size() / 2);
    double denom = base.stats().offChipReads;
    double base_cycles = base.stats().cycles;

    ExperimentRunner runner(cfg);
    for (const char *name : {"stride", "tms", "sms", "stems"}) {
        auto engine = runner.makeEngine(name, false);
        PrefetchSimulator sim(sp, engine.get());
        sim.run(trace, trace.size() / 2);
        std::printf("%-8s %9.1f%% %9.1f%% %+11.1f%%\n", name,
                    100.0 * sim.stats().covered() / denom,
                    100.0 * sim.stats().overpredictions / denom,
                    100.0 * (base_cycles / sim.stats().cycles - 1));
    }

    std::printf("\nEach hop's address comes from the previous "
                "node's data, so the baseline\npays a full memory "
                "round-trip per hop; temporal streams overlap the "
                "chain.\n");
    return 0;
}
