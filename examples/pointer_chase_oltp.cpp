/**
 * @file
 * Why temporal streaming wins on pointer chases: a B-tree-style
 * traversal where every page lookup depends on data loaded from the
 * previous page. The baseline serializes one memory round-trip per
 * hop; TMS and STeMS replay the recorded miss order and fetch the
 * chain elements in parallel (paper Section 2.1), while SMS — with
 * nothing spatial to learn across randomly placed nodes — cannot
 * help.
 *
 * The hand-built trace is wrapped in a small Workload subclass so the
 * parallel ExperimentDriver can shard the engine runs over it like
 * any registered workload.
 *
 * Run: ./build/pointer_chase_oltp
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "workloads/workload.hh"

using namespace stems;

namespace {

/** Repeated traversals of fixed pointer chains. */
class PointerChaseWorkload : public Workload
{
  public:
    std::string name() const override { return "pointer-chase"; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kOltp;
    }

    Trace
    generate(std::uint64_t seed,
             std::size_t target_records) const override
    {
        const int chains = 48, hops = 120;
        // Honor the shared records knob by scaling the traversal
        // count; 0 keeps the historical 12 repeats per chain.
        const int repeats =
            target_records == 0
                ? 12
                : std::max<int>(1, static_cast<int>(
                                       target_records /
                                       (std::size_t(chains) * hops)));
        Rng rng(11 + seed);
        PageAllocator pool(rng.fork(1), 1 << 22);
        // Each chain is a fixed list of nodes; traversals repeat.
        std::vector<std::vector<Addr>> chain(chains);
        for (auto &c : chain)
            for (int h = 0; h < hops; ++h)
                c.push_back(pool.alloc());

        TraceBuilder b;
        Rng pick(12 + seed);
        for (int r = 0; r < repeats * chains; ++r) {
            const auto &c = chain[pick.below(chains)];
            b.breakChain();
            for (Addr node : c)
                b.read(node, 0x3000, 4, /*dep_on_prev_read=*/true);
        }
        return b.take();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 0);
    BenchObsSession obs(opts, "pointer_chase_oltp");
    requireNoWorkloadSelection(
        opts, "this example always runs its own pointer-chase "
              "workload");
    PointerChaseWorkload workload;
    std::printf("pointer chase: 48 chains x 120 dependent hops, "
                "repeated\n\n");

    // The workload object is unregistered, so runWorkload takes it
    // directly; the plan still carries the trace knobs and policy.
    const std::vector<std::string> engines = benchEngines(
        opts, {"stride", "tms", "sms", "stems"});
    const SweepPlan plan = benchPlan(opts, /*timing=*/true,
                                     {workload.name()}, engines);
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    driver.applyPlan(plan);
    WorkloadResult r =
        driver.runWorkload(workload, engineSpecs(engines));
    maybeWriteJson(opts, {r});

    std::printf("%-8s %10s %10s %12s\n", "engine", "covered",
                "overpred", "speedup vs no-prefetch");
    for (const EngineResult &e : r.engines) {
        std::printf("%-8s %9.1f%% %9.1f%% %+11.1f%%\n",
                    e.engine.c_str(),
                    100.0 * e.coverage,
                    100.0 * e.overprediction,
                    100.0 * (r.baselineCycles / e.stats.cycles - 1));
    }

    std::printf("\nEach hop's address comes from the previous "
                "node's data, so the baseline\npays a full memory "
                "round-trip per hop; temporal streams overlap the "
                "chain.\n");
    obs.finish();
    return 0;
}
