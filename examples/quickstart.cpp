/**
 * @file
 * Quickstart: generate a workload trace, attach the STeMS prefetcher
 * to the simulated memory hierarchy, and report coverage and speedup
 * against the stride baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [records]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "oltp-db2";
    std::size_t records =
        argc > 2 ? std::atol(argv[2]) : 800'000;

    auto workload = makeWorkload(name);
    if (!workload) {
        std::fprintf(stderr,
                     "unknown workload '%s'; try: web-apache, "
                     "web-zeus, oltp-db2, oltp-oracle, dss-qry2, "
                     "dss-qry16, dss-qry17, em3d, ocean, sparse\n",
                     name.c_str());
        return 1;
    }

    std::printf("Workload  : %s (%s)\n", workload->name().c_str(),
                workloadClassName(workload->workloadClass()).c_str());
    std::printf("Trace     : %zu records, seed 42\n\n", records);

    // The experiment runner wires up the Table 1 system, runs the
    // no-prefetch baseline (miss normalization), the stride baseline
    // (speedup normalization) and then each requested engine.
    ExperimentConfig cfg;
    cfg.traceRecords = records;
    cfg.enableTiming = true;
    ExperimentRunner runner(cfg);
    WorkloadResult r = runner.runWorkload(
        *workload, {"tms", "sms", "stems"});

    std::printf("Baseline  : %llu off-chip read misses, stride IPC "
                "%.2f\n\n",
                static_cast<unsigned long long>(r.baselineMisses),
                r.baselineIpc);
    std::printf("%-8s %10s %10s %10s %10s\n", "engine", "covered",
                "uncovered", "overpred", "speedup");
    for (const EngineResult &e : r.engines) {
        std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %+9.1f%%\n",
                    e.engine.c_str(), 100 * e.coverage,
                    100 * e.uncovered, 100 * e.overprediction,
                    100 * (e.speedup - 1.0));
    }

    std::printf("\nSTeMS combines the temporal order of region "
                "triggers (RMOB) with\nper-region spatial sequences "
                "(PST), reconstructing the total miss order\nthe "
                "processor will follow (ISCA 2009).\n");
    return 0;
}
