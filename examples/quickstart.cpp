/**
 * @file
 * Quickstart: generate a workload trace, run the prefetch engines
 * over the simulated memory hierarchy through the parallel
 * ExperimentDriver, and report coverage and speedup against the
 * stride baseline.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/quickstart [--workloads oltp-db2] [--records N] [--jobs N]
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/registry.hh"

using namespace stems;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 800'000);
    BenchObsSession obs(opts, "quickstart");
    const std::vector<std::string> workloads =
        benchWorkloads(opts, {"oltp-db2"});
    const std::vector<std::string> engines =
        benchEngines(opts, {"tms", "sms", "stems"});

    // The plan names the whole sweep (workloads x engines, trace
    // knobs, execution policy); the driver wires up the Table 1
    // system, runs the no-prefetch baseline (miss normalization),
    // the stride baseline (speedup normalization) and each requested
    // engine, sharding the cells over a thread pool.
    const SweepPlan plan =
        benchPlan(opts, /*timing=*/true, workloads, engines);
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        std::printf("Workload  : %s (%s)\n", r.workload.c_str(),
                    workloadClassName(r.workloadClass).c_str());
        std::printf("Trace     : %zu records, seed %llu\n\n",
                    opts.records,
                    static_cast<unsigned long long>(opts.seed));
        std::printf("Baseline  : %llu off-chip read misses, stride "
                    "IPC %.2f\n\n",
                    static_cast<unsigned long long>(r.baselineMisses),
                    r.baselineIpc);
        std::printf("%-8s %10s %10s %10s %10s\n", "engine",
                    "covered", "uncovered", "overpred", "speedup");
        for (const EngineResult &e : r.engines) {
            std::printf("%-8s %9.1f%% %9.1f%% %9.1f%% %+9.1f%%\n",
                        e.engine.c_str(), 100 * e.coverage,
                        100 * e.uncovered, 100 * e.overprediction,
                        100 * (e.speedup - 1.0));
        }
        std::printf("\n");
    }

    std::printf("STeMS combines the temporal order of region "
                "triggers (RMOB) with\nper-region spatial sequences "
                "(PST), reconstructing the total miss order\nthe "
                "processor will follow (ISCA 2009).\n");
    obs.finish();
    return 0;
}
