/**
 * @file
 * Extending the library: define a custom Workload subclass, register
 * it with the WorkloadRegistry at runtime, and run the full pipeline
 * on it by name — characterization (the Figure 6 joint oracle
 * analysis) and the prefetch engines through the parallel driver.
 *
 * The example models a log-structured key-value store: a hot index
 * walked by pointer chases (temporal behaviour), an append log
 * written sequentially, and periodic compaction re-reading recent
 * log segments in order (spatial + re-read behaviour).
 *
 * Run: ./build/custom_workload
 */

#include <cstdio>
#include <vector>

#include "analysis/coverage.hh"
#include "bench/bench_util.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

using namespace stems;

namespace {

/** A log-structured KV store: chased index + streamed log. */
class KvStoreWorkload : public Workload
{
  public:
    std::string name() const override { return "kv-store"; }

    WorkloadClass
    workloadClass() const override
    {
        return WorkloadClass::kOltp;
    }

    Trace
    generate(std::uint64_t seed,
             std::size_t target_records) const override
    {
        Rng master(seed ^ 0x6b7673ULL); // "kvs"
        Rng init = master.fork(1);
        Rng run = master.fork(2);

        // Hot index: a pool of nodes traversed along recurring
        // lookup paths.
        PageAllocator index_alloc(master.fork(3),
                                  std::uint64_t{1} << 22);
        std::vector<Addr> nodes(120'000);
        for (Addr &n : nodes)
            n = index_alloc.alloc();
        SequenceLibrary paths(init, nodes.size(), 256, 24, 64);

        // Append log: fresh sequential pages.
        PageAllocator log_alloc(master.fork(4),
                                std::uint64_t{1} << 24,
                                Addr{1} << 40);
        std::vector<Addr> recent_segments;

        TraceBuilder b;
        while (b.size() < target_records) {
            // A lookup: chase 24-64 index nodes.
            std::size_t path = paths.pick(run);
            auto hops = paths.replay(path, run, {0.03, 0.0, 0.02});
            b.breakChain();
            for (std::uint32_t hop : hops)
                b.read(nodes[hop] + run.below(4) * kBlockBytes,
                       0x7000, 6, true);

            // Append a log page (sequential writes).
            Addr seg = log_alloc.alloc();
            for (unsigned off = 0; off < 16; ++off)
                b.write(addrFromRegionOffset(seg, off), 0x7100, 4);
            recent_segments.push_back(seg);

            // Occasional compaction: re-read recent segments.
            if (recent_segments.size() > 64 && run.chance(0.05)) {
                for (std::size_t i = recent_segments.size() - 48;
                     i < recent_segments.size(); ++i) {
                    for (unsigned off = 0; off < 16; ++off)
                        b.read(addrFromRegionOffset(
                                   recent_segments[i], off),
                               0x7200 + off * 4, 4, false);
                }
            }
        }
        return b.take();
    }
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv, 600'000);
    BenchObsSession obs(opts, "custom_workload");
    requireNoWorkloadSelection(
        opts, "this example always runs its own kv-store workload");

    // Register the extension (rank >= 100 keeps the paper suite's
    // canonical order intact). From here on every by-name API — the
    // driver, the benches' --workloads flag, stems_trace — sees it.
    WorkloadRegistry::instance().add("kv-store", 100, [] {
        return std::unique_ptr<Workload>(new KvStoreWorkload());
    });

    auto workload = WorkloadRegistry::instance().make("kv-store");
    Trace t = workload->generate(opts.seed, opts.records);
    std::printf("custom workload '%s': %zu records (now one of %zu "
                "registered workloads)\n\n",
                workload->name().c_str(), t.size(),
                WorkloadRegistry::instance().names().size());

    // 1. Characterize it with the Figure 6 joint oracle analysis.
    JointCoverageAnalyzer oracle;
    oracle.run(t, t.size() / 2);
    const JointCoverage &jc = oracle.result();
    std::printf("oracle predictability of %llu off-chip read "
                "misses:\n",
                static_cast<unsigned long long>(jc.total()));
    std::printf("  both %.1f%%  temporal-only %.1f%%  spatial-only "
                "%.1f%%  neither %.1f%%\n\n",
                100.0 * jc.both / jc.total(),
                100.0 * jc.tmsOnly / jc.total(),
                100.0 * jc.smsOnly / jc.total(),
                100.0 * jc.neither / jc.total());

    // 2. Run the engines on it by name, through the driver. The
    // registered name drops straight into a SweepPlan like any
    // built-in workload.
    const std::vector<std::string> engines =
        benchEngines(opts, {"tms", "sms", "stems"});
    const SweepPlan plan =
        benchPlan(opts, /*timing=*/true, {"kv-store"}, engines);
    ExperimentDriver driver;
    configureBenchDriver(driver, opts);
    const auto results = driver.run(plan);
    maybeWriteJson(opts, results);
    for (const WorkloadResult &r : results) {
        std::printf("%-8s %10s %10s %12s\n", "engine", "covered",
                    "overpred", "speedup");
        for (const EngineResult &e : r.engines) {
            std::printf("%-8s %9.1f%% %9.1f%% %+11.1f%%\n",
                        e.engine.c_str(), 100 * e.coverage,
                        100 * e.overprediction,
                        100 * (e.speedup - 1.0));
        }
    }
    obs.finish();
    return 0;
}
