/**
 * @file
 * The paper's Figure 2 motivating example: a non-clustered database
 * index scan. Pages are scattered through the buffer pool (temporal
 * behaviour: the page order repeats), and accesses within each page
 * repeat (spatial behaviour: page ID, lock bits, slot indices, data).
 *
 * This example builds exactly that access pattern by hand with the
 * public trace API, runs STeMS on it, and shows the RMOB/PST division
 * of labour: triggers stream temporally, intra-page accesses are
 * filtered from the RMOB and reconstructed spatially.
 *
 * Run: ./build/examples/database_scan
 */

#include <cstdio>
#include <vector>

#include "core/stems.hh"
#include "sim/prefetch_sim.hh"
#include "workloads/workload.hh"

using namespace stems;

int
main()
{
    // --- Build the scan by hand ------------------------------------
    // A table of 3000 pages, allocated wherever the buffer pool had
    // room (so page addresses have no spatial relationship).
    Rng rng(7);
    PageAllocator pool(rng.fork(1), 1 << 20);
    std::vector<Addr> pages;
    for (int i = 0; i < 3000; ++i)
        pages.push_back(pool.alloc());

    // Every page shares the same layout: page ID (block 0), lock
    // bits (block 1), slot indices (block 4), then two data blocks.
    const std::vector<unsigned> layout = {0, 1, 4, 9, 10};
    const Pc scan_pc = 0x2000;

    TraceBuilder b;
    auto scan_table = [&]() {
        b.breakChain();
        for (Addr page : pages) {
            bool first = true;
            std::size_t trigger = 0;
            for (unsigned off : layout) {
                if (first) {
                    trigger = b.size();
                    // The next page's address came from the index:
                    // a pointer chase.
                    b.read(addrFromRegionOffset(page, off),
                           scan_pc + off * 4, 2, true);
                    first = false;
                } else {
                    b.readWithProducer(
                        addrFromRegionOffset(page, off),
                        scan_pc + off * 4, 2, trigger);
                }
            }
        }
    };
    // Three scans of the same index: the first trains, the rest
    // stream.
    for (int s = 0; s < 3; ++s)
        scan_table();
    Trace trace = b.take();

    // --- Run STeMS over it ------------------------------------------
    StemsPrefetcher engine;
    SimParams params; // Table 1 hierarchy
    PrefetchSimulator sim(params, &engine);
    // Measure the second and third scans (the first is compulsory).
    sim.run(trace, trace.size() / 3);
    const SimStats &s = sim.stats();

    std::printf("Figure 2 scan: %zu pages x %zu blocks, 3 scans\n\n",
                pages.size(), layout.size());
    std::printf("off-chip read events : %llu\n",
                static_cast<unsigned long long>(
                    s.offChipReadEvents()));
    std::printf("covered by STeMS     : %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.covered()),
                100.0 * s.covered() / s.offChipReadEvents());
    std::printf("RMOB appends         : %llu (triggers + spatial "
                "misses)\n",
                static_cast<unsigned long long>(
                    engine.rmob().frontier()));
    std::printf("spatially filtered   : %llu misses never entered "
                "the RMOB\n",
                static_cast<unsigned long long>(
                    engine.filteredMisses()));
    std::printf("patterns in PST      : %zu\n",
                engine.pst().trainedPatterns());
    std::printf("\nThe temporal sequence records only one entry per "
                "page; the other four\nblocks per page are "
                "reconstructed from the pattern sequence table.\n");
    return 0;
}
